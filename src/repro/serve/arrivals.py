"""Seeded arrival-process load generators.

Three traffic shapes cover the service scenarios the roadmap asks for:

* :func:`poisson_arrivals` — memoryless steady load (the classic open-loop
  benchmark assumption);
* :func:`bursty_arrivals` — a two-state Markov-modulated Poisson process
  (on/off), the shape of transient-triggered radio-astronomy follow-up;
* :func:`diurnal_arrivals` — an inhomogeneous Poisson process with a
  sinusoidal rate profile, the shape of clinic-hours ultrasound traffic.

Every generator is bit-deterministic for a fixed seed: child streams derive
through :func:`repro.util.rng.derive_seed`, so adding one generator never
perturbs another's arrivals.
"""

from __future__ import annotations

import math

from repro.errors import ShapeError
from repro.serve.workload import Request, Workload
from repro.util.rng import derive_seed, make_rng


def poisson_arrivals(
    workload: Workload,
    rate_hz: float,
    horizon_s: float,
    seed: int = 0,
    start_id: int = 0,
) -> list[Request]:
    """Homogeneous Poisson arrivals over ``[0, horizon_s)``.

    Inter-arrival gaps are exponential with mean ``1 / rate_hz``; the
    number of requests is itself random (as in an open system), so two
    rates are comparable over the same wall-clock horizon.
    """
    _check_rate(rate_hz, horizon_s)
    rng = make_rng(derive_seed(seed, "poisson", workload.name, rate_hz))
    requests: list[Request] = []
    t = rng.exponential(1.0 / rate_hz)
    while t < horizon_s:
        requests.append(Request(rid=start_id + len(requests), workload=workload, arrival_s=t))
        t += rng.exponential(1.0 / rate_hz)
    return requests


def bursty_arrivals(
    workload: Workload,
    rate_on_hz: float,
    rate_off_hz: float,
    mean_on_s: float,
    mean_off_s: float,
    horizon_s: float,
    seed: int = 0,
    start_id: int = 0,
) -> list[Request]:
    """Two-state Markov-modulated Poisson arrivals (on/off bursts).

    The process alternates exponentially-distributed ``on`` and ``off``
    dwell periods; arrivals within each period are Poisson at that period's
    rate (``rate_off_hz`` may be 0 for fully silent gaps). Starts in the
    ``on`` state.
    """
    _check_rate(rate_on_hz, horizon_s)
    if rate_off_hz < 0:
        raise ShapeError(f"rate_off_hz must be >= 0, got {rate_off_hz}")
    if mean_on_s <= 0 or mean_off_s <= 0:
        raise ShapeError("mean dwell times must be positive")
    rng = make_rng(derive_seed(seed, "bursty", workload.name, rate_on_hz, rate_off_hz))
    requests: list[Request] = []
    t, on = 0.0, True
    while t < horizon_s:
        dwell = rng.exponential(mean_on_s if on else mean_off_s)
        period_end = min(t + dwell, horizon_s)
        rate = rate_on_hz if on else rate_off_hz
        if rate > 0:
            at = t + rng.exponential(1.0 / rate)
            while at < period_end:
                requests.append(
                    Request(rid=start_id + len(requests), workload=workload, arrival_s=at)
                )
                at += rng.exponential(1.0 / rate)
        t = period_end
        on = not on
    return requests


def diurnal_arrivals(
    workload: Workload,
    base_rate_hz: float,
    amplitude: float,
    period_s: float,
    horizon_s: float,
    seed: int = 0,
    start_id: int = 0,
) -> list[Request]:
    """Inhomogeneous Poisson arrivals with a sinusoidal daily profile.

    The instantaneous rate is ``base * (1 + amplitude * sin(2 pi t /
    period))``, sampled by Lewis-Shedler thinning against the peak rate —
    exact for any ``0 <= amplitude <= 1`` and still fully deterministic.
    """
    _check_rate(base_rate_hz, horizon_s)
    if not 0.0 <= amplitude <= 1.0:
        raise ShapeError(f"amplitude must be in [0, 1], got {amplitude}")
    if period_s <= 0:
        raise ShapeError(f"period_s must be positive, got {period_s}")
    rng = make_rng(derive_seed(seed, "diurnal", workload.name, base_rate_hz, amplitude))
    peak = base_rate_hz * (1.0 + amplitude)
    requests: list[Request] = []
    t = rng.exponential(1.0 / peak)
    while t < horizon_s:
        rate_t = base_rate_hz * (1.0 + amplitude * math.sin(2.0 * math.pi * t / period_s))
        if rng.uniform() < rate_t / peak:
            requests.append(
                Request(rid=start_id + len(requests), workload=workload, arrival_s=t)
            )
        t += rng.exponential(1.0 / peak)
    return requests


def merge_arrivals(*streams: list[Request]) -> list[Request]:
    """Interleave several arrival streams into one sorted, re-numbered trace.

    Multi-tenant scenarios generate each workload's stream independently
    (keeping per-stream determinism) and merge here; request ids are
    reassigned in arrival order so they are unique across the trace.
    """
    merged = sorted(
        (req for stream in streams for req in stream), key=lambda r: r.arrival_s
    )
    return [
        Request(rid=i, workload=r.workload, arrival_s=r.arrival_s, data=r.data)
        for i, r in enumerate(merged)
    ]


def _check_rate(rate_hz: float, horizon_s: float) -> None:
    if rate_hz <= 0:
        raise ShapeError(f"arrival rate must be positive, got {rate_hz}")
    if horizon_s <= 0:
        raise ShapeError(f"horizon must be positive, got {horizon_s}")
