"""Service request and workload descriptors.

A serving tier sees neither matrices nor plans — it sees *requests*: "beam
this block", "reconstruct this frame", each tied to a workload class. A
:class:`Workload` captures everything the scheduler needs to know to treat
two requests as batchable into one tensor-core launch: the GEMM shape, the
precision, the stage-inclusion flags, and the weight-set generation (two
requests against different calibrations must never share a GEMM). A
:class:`Request` is one arrival of a workload, optionally carrying a real
data block for functional fleets.

The domain adapters expose ready-made descriptors through their
``service_workload()`` entry points
(:func:`repro.apps.radioastronomy.beamformer.service_workload`,
:func:`repro.apps.ultrasound.imaging.service_workload`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.ccglib.precision import Precision, complex_ops, traits
from repro.ccglib.tuning import TuneParams
from repro.errors import ShapeError
from repro.gpusim.device import Device
from repro.gpusim.specs import GPUSpec
from repro.tcbf import BeamformerPlan


@dataclass(frozen=True)
class Workload:
    """One batchable class of beamforming requests.

    Parameters mirror :class:`~repro.tcbf.plan.BeamformerPlan`;
    ``batch_per_request`` is the batch extent one request contributes (e.g.
    channels x polarizations for a LOFAR beam block, 1 for an ultrasound
    frame batch). ``weights_version`` is the calibration generation: bump it
    when the weight set changes and the batcher stops coalescing old and new
    requests while the plan cache naturally faults in fresh entries.

    ``priority`` is the scheduling class — **lower is more urgent** (0 is
    the most interactive class, like a live ultrasound view; higher values
    are throughput/batch classes, like offline pulsar reprocessing).
    ``tenant`` names the caller for weighted-fair queueing across parties
    sharing a fleet. Both are part of the batching identity: requests never
    coalesce across priority classes or tenants, so every merged launch is
    attributable to exactly one class and one tenant.

    ``weights`` optionally carries the shared per-request A operand for
    functional fleets; it is excluded from equality/compatibility (the
    version field is the identity of the weight set).
    """

    name: str
    n_beams: int
    n_receivers: int
    n_samples: int
    batch_per_request: int = 1
    precision: Precision = Precision.FLOAT16
    include_transpose: bool = True
    include_packing: bool | None = None
    restore_output_scale: bool = False
    weights_version: int = 0
    priority: int = 0
    tenant: str = "default"
    params: TuneParams | None = None
    weights: np.ndarray | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        for label, value in (
            ("n_beams", self.n_beams),
            ("n_receivers", self.n_receivers),
            ("n_samples", self.n_samples),
            ("batch_per_request", self.batch_per_request),
        ):
            if value < 1:
                raise ShapeError(f"{label} must be >= 1, got {value}")
        if self.priority < 0:
            raise ShapeError(f"priority must be >= 0, got {self.priority}")
        if not self.tenant:
            raise ShapeError("tenant must be a non-empty string")

    @property
    def effective_packing(self) -> bool:
        """The packing flag as the plan will resolve it.

        ``include_packing=None`` defaults to "pack iff int1", and float
        precisions force it off — mirroring
        :class:`~repro.tcbf.plan.BeamformerPlan` so two descriptors that
        build identical plans also share one batching identity.
        """
        packing = (
            self.include_packing
            if self.include_packing is not None
            else self.precision is Precision.INT1
        )
        return packing and self.precision is Precision.INT1

    def compat_key(self) -> tuple:
        """Hashable batching identity.

        Requests whose workloads share this key may be merged into one
        batched plan execution: same shape, precision, stage accounting
        (with the packing flag resolved, not as passed), tuning override,
        and weight-set generation. The priority class and tenant are part
        of the key so a batch never straddles scheduling classes or
        callers — each launch has one priority and one accountable tenant.
        """
        return (
            self.name,
            self.n_beams,
            self.n_receivers,
            self.n_samples,
            self.batch_per_request,
            self.precision.value,
            self.include_transpose,
            self.effective_packing,
            self.restore_output_scale,
            self.weights_version,
            self.priority,
            self.tenant,
            self.params,
        )

    def make_plan(self, device: Device, n_requests: int = 1) -> BeamformerPlan:
        """Build the merged-batch plan for ``n_requests`` coalesced requests."""
        if n_requests < 1:
            raise ShapeError(f"n_requests must be >= 1, got {n_requests}")
        return BeamformerPlan(
            device,
            n_beams=self.n_beams,
            n_receivers=self.n_receivers,
            n_samples=self.n_samples,
            batch=n_requests * self.batch_per_request,
            precision=self.precision,
            params=self.params,
            include_transpose=self.include_transpose,
            include_packing=self.include_packing,
            restore_output_scale=self.restore_output_scale,
            name=f"serve_{self.name}",
        )

    def request_ops(self) -> float:
        """Application-level GEMM operations one request is worth."""
        return complex_ops(self.batch_per_request, self.n_beams, self.n_samples, self.n_receivers)

    # -- placement-facing views ----------------------------------------------

    @property
    def capability(self) -> str:
        """The capability class this workload needs from a device.

        Today capability is precision support (1-bit MMA is NVIDIA-only,
        paper §II), so the class is the precision's name. Autoscaling
        signals group queued pressure by this key: a queue of ``"int1"``
        work is only relieved by growing the pool that supports int1, no
        matter how many other devices join.
        """
        return self.precision.value

    def supported_by(self, spec: GPUSpec) -> bool:
        """Whether a device model can run this workload at all.

        The capability requirement of the placement layer: 1-bit matrix
        values exist on NVIDIA tensor cores only (paper §II), so an int1
        request must never land on a device whose
        :class:`~repro.gpusim.arch.ArchCapabilities` lack the precision.
        """
        return spec.caps.supports_precision(self.precision.value)

    def footprint_bytes(self, n_requests: int = 1) -> float:
        """Device-memory estimate of the merged-batch operands.

        A (weights) and B (data) at the precision's storage size plus the
        float32 accumulator output, complex throughout. This is what the
        placer compares against a device's memory to decide whether a
        request fits one device, must shard across several, or cannot be
        served at all.
        """
        batch = n_requests * self.batch_per_request
        tr = traits(self.precision)
        operand_values = batch * (
            self.n_beams * self.n_receivers + self.n_receivers * self.n_samples
        )
        output_values = batch * self.n_beams * self.n_samples
        return 2.0 * (operand_values * tr.input_bytes + output_values * tr.output_bytes)

    @property
    def splittable(self) -> bool:
        """Whether the batch axis offers more than one unit to shard over."""
        return self.batch_per_request > 1

    def padded_to(self, n_samples: int) -> "Workload":
        """The shape-bucket view: this workload padded to ``n_samples``.

        Zero sample columns change no real output column (the GEMM is
        column-independent), so requests of nearby sample counts may share
        one launch at the bucket's shape; the padding's cost is priced by
        the plan built at the padded shape, never hidden.
        """
        if n_samples < self.n_samples:
            raise ShapeError(f"cannot pad {self.n_samples} samples down to {n_samples}")
        if n_samples == self.n_samples:
            return self
        return replace(self, n_samples=n_samples)

    def shard(self, batch_per_request: int) -> "Workload":
        """A per-shard view with a smaller batch extent (split placement).

        ``weights`` is dropped: a shard sees only its own batch rows, which
        the split executor slices from the parent workload's weight set.
        """
        if not 1 <= batch_per_request <= self.batch_per_request:
            raise ShapeError(
                f"shard extent must be in [1, {self.batch_per_request}], "
                f"got {batch_per_request}"
            )
        if batch_per_request == self.batch_per_request:
            return self
        return replace(self, batch_per_request=batch_per_request, weights=None)


@dataclass
class Request:
    """One arrival of a workload at the service boundary.

    ``data`` is the caller's B operand ``(batch_per_request, n_receivers,
    n_samples)`` for functional fleets; ``None`` on dry-run fleets, where
    only the cost model runs.
    """

    rid: int
    workload: Workload
    arrival_s: float
    data: np.ndarray | None = field(default=None, compare=False)
