"""Service request and workload descriptors.

A serving tier sees neither matrices nor plans — it sees *requests*: "beam
this block", "reconstruct this frame", each tied to a workload class. A
:class:`Workload` captures everything the scheduler needs to know to treat
two requests as batchable into one tensor-core launch: the GEMM shape, the
precision, the stage-inclusion flags, and the weight-set generation (two
requests against different calibrations must never share a GEMM). A
:class:`Request` is one arrival of a workload, optionally carrying a real
data block for functional fleets.

The domain adapters expose ready-made descriptors through their
``service_workload()`` entry points
(:func:`repro.apps.radioastronomy.beamformer.service_workload`,
:func:`repro.apps.ultrasound.imaging.service_workload`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ccglib.precision import Precision, complex_ops
from repro.ccglib.tuning import TuneParams
from repro.errors import ShapeError
from repro.gpusim.device import Device
from repro.tcbf import BeamformerPlan


@dataclass(frozen=True)
class Workload:
    """One batchable class of beamforming requests.

    Parameters mirror :class:`~repro.tcbf.plan.BeamformerPlan`;
    ``batch_per_request`` is the batch extent one request contributes (e.g.
    channels x polarizations for a LOFAR beam block, 1 for an ultrasound
    frame batch). ``weights_version`` is the calibration generation: bump it
    when the weight set changes and the batcher stops coalescing old and new
    requests while the plan cache naturally faults in fresh entries.

    ``priority`` is the scheduling class — **lower is more urgent** (0 is
    the most interactive class, like a live ultrasound view; higher values
    are throughput/batch classes, like offline pulsar reprocessing).
    ``tenant`` names the caller for weighted-fair queueing across parties
    sharing a fleet. Both are part of the batching identity: requests never
    coalesce across priority classes or tenants, so every merged launch is
    attributable to exactly one class and one tenant.

    ``weights`` optionally carries the shared per-request A operand for
    functional fleets; it is excluded from equality/compatibility (the
    version field is the identity of the weight set).
    """

    name: str
    n_beams: int
    n_receivers: int
    n_samples: int
    batch_per_request: int = 1
    precision: Precision = Precision.FLOAT16
    include_transpose: bool = True
    include_packing: bool | None = None
    restore_output_scale: bool = False
    weights_version: int = 0
    priority: int = 0
    tenant: str = "default"
    params: TuneParams | None = None
    weights: np.ndarray | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        for label, value in (
            ("n_beams", self.n_beams),
            ("n_receivers", self.n_receivers),
            ("n_samples", self.n_samples),
            ("batch_per_request", self.batch_per_request),
        ):
            if value < 1:
                raise ShapeError(f"{label} must be >= 1, got {value}")
        if self.priority < 0:
            raise ShapeError(f"priority must be >= 0, got {self.priority}")
        if not self.tenant:
            raise ShapeError("tenant must be a non-empty string")

    @property
    def effective_packing(self) -> bool:
        """The packing flag as the plan will resolve it.

        ``include_packing=None`` defaults to "pack iff int1", and float
        precisions force it off — mirroring
        :class:`~repro.tcbf.plan.BeamformerPlan` so two descriptors that
        build identical plans also share one batching identity.
        """
        packing = (
            self.include_packing
            if self.include_packing is not None
            else self.precision is Precision.INT1
        )
        return packing and self.precision is Precision.INT1

    def compat_key(self) -> tuple:
        """Hashable batching identity.

        Requests whose workloads share this key may be merged into one
        batched plan execution: same shape, precision, stage accounting
        (with the packing flag resolved, not as passed), tuning override,
        and weight-set generation. The priority class and tenant are part
        of the key so a batch never straddles scheduling classes or
        callers — each launch has one priority and one accountable tenant.
        """
        return (
            self.name,
            self.n_beams,
            self.n_receivers,
            self.n_samples,
            self.batch_per_request,
            self.precision.value,
            self.include_transpose,
            self.effective_packing,
            self.restore_output_scale,
            self.weights_version,
            self.priority,
            self.tenant,
            self.params,
        )

    def make_plan(self, device: Device, n_requests: int = 1) -> BeamformerPlan:
        """Build the merged-batch plan for ``n_requests`` coalesced requests."""
        if n_requests < 1:
            raise ShapeError(f"n_requests must be >= 1, got {n_requests}")
        return BeamformerPlan(
            device,
            n_beams=self.n_beams,
            n_receivers=self.n_receivers,
            n_samples=self.n_samples,
            batch=n_requests * self.batch_per_request,
            precision=self.precision,
            params=self.params,
            include_transpose=self.include_transpose,
            include_packing=self.include_packing,
            restore_output_scale=self.restore_output_scale,
            name=f"serve_{self.name}",
        )

    def request_ops(self) -> float:
        """Application-level GEMM operations one request is worth."""
        return complex_ops(
            self.batch_per_request, self.n_beams, self.n_samples, self.n_receivers
        )


@dataclass
class Request:
    """One arrival of a workload at the service boundary.

    ``data`` is the caller's B operand ``(batch_per_request, n_receivers,
    n_samples)`` for functional fleets; ``None`` on dry-run fleets, where
    only the cost model runs.
    """

    rid: int
    workload: Workload
    arrival_s: float
    data: np.ndarray | None = field(default=None, compare=False)
