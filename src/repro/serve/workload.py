"""Service request and workload descriptors — single kernels and pipelines.

A serving tier sees neither matrices nor plans — it sees *requests*: "beam
this block", "reconstruct this frame", each tied to a workload class. A
:class:`Workload` captures everything the scheduler needs to know to treat
two requests as batchable into one tensor-core launch: the GEMM shape, the
precision, the stage-inclusion flags, and the weight-set generation (two
requests against different calibrations must never share a GEMM). A
:class:`Request` is one arrival of a workload, optionally carrying a real
data block for functional fleets.

Real deployments chain kernels, not single launches — channelizer →
beamformer → dedispersion search for a radio observatory, beamform →
Doppler ensemble for a clinic. A :class:`PipelineWorkload` describes such a
chain as a validated DAG of :class:`Stage` nodes, each wrapping one
batchable :class:`Workload` (today's single-kernel descriptor is exactly
the one-stage special case — see :meth:`Workload.single_stage`). Stages of
different pipeline arrivals batch together per stage (same compat key);
stages of *different* pipelines never coalesce (their workload names are
pipeline-qualified). Inter-stage buffers are first-class: each stage
declares the bytes it hands its successors, which placement prices as
resident (same worker) or transferred (different worker).

The domain adapters expose ready-made descriptors through their
``service_workload()`` (single-stage) and ``pipeline_workload()`` (DAG)
entry points
(:func:`repro.apps.radioastronomy.beamformer.service_workload`,
:func:`repro.apps.ultrasound.imaging.service_workload`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.ccglib.precision import Precision, complex_ops, traits
from repro.ccglib.tuning import TuneParams
from repro.errors import ShapeError
from repro.gpusim.device import Device
from repro.gpusim.specs import GPUSpec
from repro.tcbf import BeamformerPlan


@dataclass(frozen=True)
class Workload:
    """One batchable class of beamforming requests.

    Parameters mirror :class:`~repro.tcbf.plan.BeamformerPlan`;
    ``batch_per_request`` is the batch extent one request contributes (e.g.
    channels x polarizations for a LOFAR beam block, 1 for an ultrasound
    frame batch). ``weights_version`` is the calibration generation: bump it
    when the weight set changes and the batcher stops coalescing old and new
    requests while the plan cache naturally faults in fresh entries.

    ``priority`` is the scheduling class — **lower is more urgent** (0 is
    the most interactive class, like a live ultrasound view; higher values
    are throughput/batch classes, like offline pulsar reprocessing).
    ``tenant`` names the caller for weighted-fair queueing across parties
    sharing a fleet. Both are part of the batching identity: requests never
    coalesce across priority classes or tenants, so every merged launch is
    attributable to exactly one class and one tenant.

    ``weights`` optionally carries the shared per-request A operand for
    functional fleets; it is excluded from equality/compatibility (the
    version field is the identity of the weight set).
    """

    name: str
    n_beams: int
    n_receivers: int
    n_samples: int
    batch_per_request: int = 1
    precision: Precision = Precision.FLOAT16
    include_transpose: bool = True
    include_packing: bool | None = None
    restore_output_scale: bool = False
    weights_version: int = 0
    priority: int = 0
    tenant: str = "default"
    params: TuneParams | None = None
    weights: np.ndarray | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        for label, value in (
            ("n_beams", self.n_beams),
            ("n_receivers", self.n_receivers),
            ("n_samples", self.n_samples),
            ("batch_per_request", self.batch_per_request),
        ):
            if value < 1:
                raise ShapeError(f"{label} must be >= 1, got {value}")
        if self.priority < 0:
            raise ShapeError(f"priority must be >= 0, got {self.priority}")
        if not self.tenant:
            raise ShapeError("tenant must be a non-empty string")

    @property
    def effective_packing(self) -> bool:
        """The packing flag as the plan will resolve it.

        ``include_packing=None`` defaults to "pack iff int1", and float
        precisions force it off — mirroring
        :class:`~repro.tcbf.plan.BeamformerPlan` so two descriptors that
        build identical plans also share one batching identity.
        """
        packing = (
            self.include_packing
            if self.include_packing is not None
            else self.precision is Precision.INT1
        )
        return packing and self.precision is Precision.INT1

    def compat_key(self) -> tuple:
        """Hashable batching identity.

        Requests whose workloads share this key may be merged into one
        batched plan execution: same shape, precision, stage accounting
        (with the packing flag resolved, not as passed), tuning override,
        and weight-set generation. The priority class and tenant are part
        of the key so a batch never straddles scheduling classes or
        callers — each launch has one priority and one accountable tenant.
        """
        return (
            self.name,
            self.n_beams,
            self.n_receivers,
            self.n_samples,
            self.batch_per_request,
            self.precision.value,
            self.include_transpose,
            self.effective_packing,
            self.restore_output_scale,
            self.weights_version,
            self.priority,
            self.tenant,
            self.params,
        )

    def make_plan(self, device: Device, n_requests: int = 1) -> BeamformerPlan:
        """Build the merged-batch plan for ``n_requests`` coalesced requests."""
        if n_requests < 1:
            raise ShapeError(f"n_requests must be >= 1, got {n_requests}")
        return BeamformerPlan(
            device,
            n_beams=self.n_beams,
            n_receivers=self.n_receivers,
            n_samples=self.n_samples,
            batch=n_requests * self.batch_per_request,
            precision=self.precision,
            params=self.params,
            include_transpose=self.include_transpose,
            include_packing=self.include_packing,
            restore_output_scale=self.restore_output_scale,
            name=f"serve_{self.name}",
        )

    def request_ops(self) -> float:
        """Application-level GEMM operations one request is worth."""
        return complex_ops(self.batch_per_request, self.n_beams, self.n_samples, self.n_receivers)

    # -- placement-facing views ----------------------------------------------

    @property
    def capability(self) -> str:
        """The capability class this workload needs from a device.

        Today capability is precision support (1-bit MMA is NVIDIA-only,
        paper §II), so the class is the precision's name. Autoscaling
        signals group queued pressure by this key: a queue of ``"int1"``
        work is only relieved by growing the pool that supports int1, no
        matter how many other devices join.
        """
        return self.precision.value

    def supported_by(self, spec: GPUSpec) -> bool:
        """Whether a device model can run this workload at all.

        The capability requirement of the placement layer: 1-bit matrix
        values exist on NVIDIA tensor cores only (paper §II), so an int1
        request must never land on a device whose
        :class:`~repro.gpusim.arch.ArchCapabilities` lack the precision.
        """
        return spec.caps.supports_precision(self.precision.value)

    def footprint_bytes(self, n_requests: int = 1) -> float:
        """Device-memory estimate of the merged-batch operands.

        A (weights) and B (data) at the precision's storage size plus the
        float32 accumulator output, complex throughout. This is what the
        placer compares against a device's memory to decide whether a
        request fits one device, must shard across several, or cannot be
        served at all.
        """
        batch = n_requests * self.batch_per_request
        tr = traits(self.precision)
        operand_values = batch * (
            self.n_beams * self.n_receivers + self.n_receivers * self.n_samples
        )
        output_values = batch * self.n_beams * self.n_samples
        return 2.0 * (operand_values * tr.input_bytes + output_values * tr.output_bytes)

    @property
    def splittable(self) -> bool:
        """Whether the batch axis offers more than one unit to shard over."""
        return self.batch_per_request > 1

    def padded_to(self, n_samples: int) -> "Workload":
        """The shape-bucket view: this workload padded to ``n_samples``.

        Zero sample columns change no real output column (the GEMM is
        column-independent), so requests of nearby sample counts may share
        one launch at the bucket's shape; the padding's cost is priced by
        the plan built at the padded shape, never hidden.
        """
        if n_samples < self.n_samples:
            raise ShapeError(f"cannot pad {self.n_samples} samples down to {n_samples}")
        if n_samples == self.n_samples:
            return self
        return replace(self, n_samples=n_samples)

    def shard(self, batch_per_request: int) -> "Workload":
        """A per-shard view with a smaller batch extent (split placement).

        ``weights`` is dropped: a shard sees only its own batch rows, which
        the split executor slices from the parent workload's weight set.
        """
        if not 1 <= batch_per_request <= self.batch_per_request:
            raise ShapeError(
                f"shard extent must be in [1, {self.batch_per_request}], "
                f"got {batch_per_request}"
            )
        if batch_per_request == self.batch_per_request:
            return self
        return replace(self, batch_per_request=batch_per_request, weights=None)

    def single_stage(self) -> "PipelineWorkload":
        """This workload as a one-stage pipeline — the blessed conversion.

        The single-stage pipeline is *behaviourally identical* to the bare
        workload: the stage keeps this workload's name (no pipeline
        qualification), so its requests share batches, plans, and golden
        replays with legacy ``Request(workload=...)`` arrivals bit-exactly.
        Use this, not a hand-built :class:`PipelineWorkload`, when lifting
        an existing request class into the pipeline API.
        """
        return PipelineWorkload(name=self.name, stages=(Stage(name=self.name, workload=self),))

    def output_bytes(self) -> int:
        """Bytes of one request's output block (the inter-stage buffer unit).

        The float32 complex accumulator output of the merged GEMM, per
        request — what a successor stage must read, resident or over the
        interconnect. :class:`Stage` uses this as its default buffer size.
        """
        tr = traits(self.precision)
        return int(2 * self.batch_per_request * self.n_beams * self.n_samples * tr.output_bytes)


@dataclass(frozen=True)
class Stage:
    """One node of a :class:`PipelineWorkload`: a batchable kernel class.

    ``workload`` is the stage's single-kernel descriptor — batching,
    placement, and the plan cache treat a stage exactly as they treat a
    standalone workload (same compat key machinery), so same-stage requests
    from different pipeline arrivals coalesce into one launch while stages
    of different pipelines never share a batch (their workload names are
    pipeline-qualified by :class:`PipelineWorkload`).

    ``depends_on`` names the stages whose outputs this stage consumes; a
    stage is released the instant its last dependency completes.
    ``output_bytes`` is the per-request inter-stage buffer this stage hands
    each successor (default: the workload's own output block) — the
    quantity placement prices as resident or transferred.
    """

    name: str
    workload: Workload
    depends_on: tuple[str, ...] = ()
    output_bytes: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ShapeError("Stage needs a non-empty name")
        if len(set(self.depends_on)) != len(self.depends_on):
            raise ShapeError(f"stage {self.name!r} lists a duplicate dependency")
        if self.name in self.depends_on:
            raise ShapeError(f"stage {self.name!r} depends on itself")
        if self.output_bytes is None:
            object.__setattr__(self, "output_bytes", self.workload.output_bytes())
        elif self.output_bytes < 0:
            raise ShapeError(f"output_bytes must be >= 0, got {self.output_bytes}")


@dataclass(frozen=True)
class PipelineWorkload:
    """A validated DAG of stages served as one end-to-end request class.

    Topology rules, checked at construction: stage names are unique, every
    dependency names an earlier-declared-or-later stage that exists, the
    graph is acyclic, and exactly one stage has no dependencies (the
    *source* — the stage arrivals enter at). Multiple sinks are allowed; a
    request completes when its last stage does.

    ``priority`` / ``tenant``, when given, are inherited by every stage
    workload (the whole pipeline schedules as one class and bills one
    caller); per-stage precision is whatever each stage's workload says —
    mixed-precision pipelines (int1 beamform feeding a float16 Doppler
    ensemble) are the normal case.

    Multi-stage pipelines qualify their stage workload names as
    ``"<pipeline>/<stage>"`` so stages of *different* pipelines never share
    a compat key; a single-stage pipeline keeps the bare workload name —
    that is what makes :meth:`Workload.single_stage` a byte-identical
    refactor of the legacy single-kernel path.
    """

    name: str
    stages: tuple[Stage, ...]
    priority: int | None = None
    tenant: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ShapeError("PipelineWorkload needs a non-empty name")
        if not self.stages:
            raise ShapeError(f"pipeline {self.name!r} needs at least one stage")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ShapeError(f"pipeline {self.name!r} has duplicate stage names")
        known = set(names)
        for stage in self.stages:
            for dep in stage.depends_on:
                if dep not in known:
                    raise ShapeError(
                        f"pipeline {self.name!r}: stage {stage.name!r} depends on "
                        f"unknown stage {dep!r}"
                    )
        sources = [stage for stage in self.stages if not stage.depends_on]
        if len(sources) != 1:
            raise ShapeError(
                f"pipeline {self.name!r} must have exactly one source stage "
                f"(no dependencies), found {len(sources)}"
            )
        order = self._topo_sort()  # raises on cycles
        object.__setattr__(self, "_topo", tuple(order))
        stages = self.stages
        if self.priority is not None or self.tenant is not None:
            stages = tuple(
                replace(
                    stage,
                    workload=replace(
                        stage.workload,
                        priority=self.priority if self.priority is not None else stage.workload.priority,
                        tenant=self.tenant if self.tenant is not None else stage.workload.tenant,
                    ),
                )
                for stage in stages
            )
        if len(stages) > 1:
            prefix = f"{self.name}/"
            stages = tuple(
                stage
                if stage.workload.name.startswith(prefix)
                else replace(stage, workload=replace(stage.workload, name=f"{prefix}{stage.name}"))
                for stage in stages
            )
        object.__setattr__(self, "stages", stages)

    def _topo_sort(self) -> list[str]:
        indegree = {stage.name: len(stage.depends_on) for stage in self.stages}
        successors: dict[str, list[str]] = {stage.name: [] for stage in self.stages}
        for stage in self.stages:
            for dep in stage.depends_on:
                successors[dep].append(stage.name)
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for succ in successors[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.stages):
            cyclic = sorted(name for name, deg in indegree.items() if deg > 0)
            raise ShapeError(f"pipeline {self.name!r} has a dependency cycle through {cyclic}")
        return order

    # -- topology views ------------------------------------------------------

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def topo_order(self) -> tuple[str, ...]:
        """Stage names in one deterministic dependency-respecting order."""
        return self._topo  # type: ignore[attr-defined]

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise ShapeError(f"pipeline {self.name!r} has no stage {name!r}")

    def stage_index(self, name: str) -> int:
        """Position of a stage in :attr:`topo_order` (trace flow-arrow ids)."""
        return self.topo_order.index(self.stage(name).name)

    @property
    def source(self) -> Stage:
        """The unique entry stage — what an arrival's request executes first."""
        return next(stage for stage in self.stages if not stage.depends_on)

    @property
    def sinks(self) -> tuple[Stage, ...]:
        """Stages nothing depends on; the request completes when all have run."""
        consumed = {dep for stage in self.stages for dep in stage.depends_on}
        return tuple(stage for stage in self.stages if stage.name not in consumed)

    def successors(self, name: str) -> tuple[Stage, ...]:
        """Stages that consume ``name``'s output, in declaration order."""
        key = self.stage(name).name
        return tuple(stage for stage in self.stages if key in stage.depends_on)

    # -- serving-facing views ------------------------------------------------

    @property
    def kernel(self) -> Workload:
        """The sole stage's workload — single-stage pipelines only.

        The migration escape hatch for callers that still need the bare
        single-kernel :class:`Workload` surface (``make_plan``,
        ``footprint_bytes`` per launch, direct :class:`Request`
        construction) after the adapters' ``service_workload()`` moved to
        returning the pipeline form. Raises for multi-stage pipelines,
        which have no single kernel to name.
        """
        if len(self.stages) != 1:
            raise ShapeError(
                f"pipeline {self.name!r} has {len(self.stages)} stages; "
                ".kernel is defined for single-stage pipelines only"
            )
        return self.stages[0].workload

    @property
    def priority_class(self) -> int:
        """The pipeline's scheduling class (the source stage's priority)."""
        return self.source.workload.priority

    @property
    def tenant_name(self) -> str:
        """The accountable caller (the source stage's tenant)."""
        return self.source.workload.tenant

    def stage_input_bytes(self, name: str) -> int:
        """Bytes one request's ``name`` stage reads from its dependencies."""
        return sum(self.stage(dep).output_bytes or 0 for dep in self.stage(name).depends_on)

    def footprint_bytes(self, n_requests: int = 1) -> float:
        """Device-memory estimate across all stages and inter-stage buffers.

        The sum of every stage's merged-operand footprint plus every
        inter-stage buffer, for ``n_requests`` coalesced requests — the
        whole-pipeline number capacity planning compares against fleet
        memory (each *stage* still places against its own workload
        footprint, since stages run one at a time per request).
        """
        stage_bytes = sum(s.workload.footprint_bytes(n_requests) for s in self.stages)
        buffer_bytes = float(
            n_requests * sum((s.output_bytes or 0) for s in self.stages if self.successors(s.name))
        )
        return stage_bytes + buffer_bytes


@dataclass
class Request:
    """One arrival of a workload at the service boundary.

    ``data`` is the caller's B operand ``(batch_per_request, n_receivers,
    n_samples)`` for functional fleets; ``None`` on dry-run fleets, where
    only the cost model runs.

    The pipeline fields are populated by the serving tier, not by callers:
    an arrival of a :class:`PipelineWorkload` carries ``pipeline`` and
    ``stage`` (the source stage); requests for successor stages are created
    internally by the service when dependencies complete, with ``root``
    pointing at the original arrival, ``resident_workers`` naming where
    dependency outputs live, and ``stage_input_bytes`` the buffer bytes a
    non-resident placement must transfer. All default off, so legacy
    single-kernel requests are untouched.
    """

    rid: int
    workload: Workload
    arrival_s: float
    data: np.ndarray | None = field(default=None, compare=False)
    pipeline: "PipelineWorkload | None" = field(default=None, compare=False, repr=False)
    stage: str | None = field(default=None, compare=False)
    root: "Request | None" = field(default=None, compare=False, repr=False)
    resident_workers: tuple[int, ...] = field(default=(), compare=False)
    stage_input_bytes: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if isinstance(self.workload, PipelineWorkload):
            # Hand-built requests may pass the pipeline form directly;
            # they enter at the source stage, exactly as the arrival
            # generators do (a single-stage pipeline's source workload is
            # the wrapped kernel, so legacy behaviour is unchanged).
            if self.pipeline is None:
                source = self.workload.source
                self.pipeline = self.workload
                self.stage = source.name
                self.workload = source.workload

    @property
    def root_request(self) -> "Request":
        """The originating arrival (itself for legacy/source requests)."""
        return self.root if self.root is not None else self

    @property
    def is_pipeline_stage(self) -> bool:
        """True when this request is one stage of a multi-stage pipeline."""
        return self.pipeline is not None and self.pipeline.n_stages > 1
