"""repro.serve — the async beamforming service tier over :mod:`repro.tcbf`.

The paper delivers a library; the roadmap's north star is a *service*:
sporadic per-caller requests turned into the large, saturating batches the
tensor cores need. This package is that tier, as a deterministic
discrete-event simulation:

* :mod:`~repro.serve.workload` — :class:`Workload`/:class:`Request`
  descriptors (the app adapters construct them via ``service_workload()``),
  plus :class:`Stage`/:class:`PipelineWorkload` — validated multi-stage DAG
  workloads with end-to-end SLOs (built by the adapters'
  ``pipeline_workload()``);
* :mod:`~repro.serve.arrivals` — seeded Poisson / bursty / diurnal load
  generators;
* :mod:`~repro.serve.batching` — the dynamic micro-batcher (``max_batch``
  size trigger, ``max_wait_s`` latency trigger);
* :mod:`~repro.serve.cache` — the per-device-segmented LRU
  :class:`PlanCache` skipping planning and one-time weight preparation for
  repeated workloads;
* :mod:`~repro.serve.placement` — the :class:`Placer`: one cost-model-driven
  decision point turning every request into an explicit
  :class:`PlacementDecision` (route to the cost-preferred capable worker /
  pad-and-merge into a shape bucket / split across workers via in-service
  sharding / shed infeasible work);
* :mod:`~repro.serve.autoscale` — elastic fleets: the :class:`Autoscaler`
  event source growing/shrinking the fleet through the placement layer,
  with :class:`ReactiveAutoscaler` (queue-pressure) and
  :class:`PredictiveAutoscaler` (diurnal rate-forecast) policies,
  honest cold-start charging, and non-destructive scale-down draining;
* :mod:`~repro.serve.scheduler` — :class:`PriorityScheduler`: strict
  priority classes with deficit-round-robin weighted-fair queueing across
  tenants, and non-destructive preemption of queued lower-priority work;
* :mod:`~repro.serve.dispatch` — per-device queues with copy/compute
  overlap; placer-routed (least-loaded is the homogeneous special case),
  heterogeneous-fleet-aware, with multi-worker shard dispatch;
* :mod:`~repro.serve.faults` — seeded deterministic fault injection
  (:class:`FaultPlan`: worker crashes, transient slowdowns, replacements)
  and the :class:`ResiliencePolicy` recovery knobs — per-class retry
  budgets, hedged dispatch against stragglers, shard-failure recovery,
  plan-cache re-warm on replacement workers;
* :mod:`~repro.serve.slo` — SLO targets, deterministic percentiles,
  front-door admission control (lowest-class-first load shedding), and the
  per-class / per-tenant :class:`SLOTracker`;
* :mod:`~repro.serve.obs` — observability: the zero-overhead-when-disabled
  :class:`TraceRecorder` of typed lifecycle span events, Chrome/Perfetto
  ``trace_event`` export, exact critical-path latency attribution with
  p99 blame, the :class:`MetricsRegistry` the whole stack publishes
  into, plus operational monitoring — fixed-cadence :class:`TimeSeries`
  sampling (:class:`ServiceMonitor`), SLO error-budget burn-rate
  alerting, and a byte-deterministic HTML dashboard;
* :mod:`~repro.serve.service` — :class:`BeamformingService`, the event
  loop tying it together, reporting p50/p95/p99, throughput, goodput, shed
  rate, batch and cache statistics, and fleet utilization — overall and
  broken out per priority class and per tenant.
"""

from repro.serve.arrivals import (
    RateForecast,
    bursty_arrivals,
    diurnal_arrivals,
    fit_rate_forecast,
    merge_arrivals,
    poisson_arrivals,
)
from repro.serve.autoscale import (
    Autoscaler,
    AutoscalePolicy,
    FleetSignals,
    PredictiveAutoscaler,
    ReactiveAutoscaler,
    ScaleAction,
    ScaleEvent,
    ScaleKind,
)
from repro.serve.batching import Batch, BatchingPolicy, MicroBatcher
from repro.serve.cache import CachedPlan, PlanCache
from repro.serve.dispatch import BatchExecution, DeviceWorker, FleetDispatcher
from repro.serve.faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    ResiliencePolicy,
    crash_storm,
)
from repro.serve.obs import (
    NULL_RECORDER,
    Alert,
    AlertEngine,
    BlameReport,
    BurnRateRule,
    ErrorBudget,
    MetricsRegistry,
    RequestPath,
    ServiceMonitor,
    TimeSeries,
    TraceRecorder,
    render_dashboard,
    render_trace,
    write_dashboard,
    write_trace,
)
from repro.serve.placement import (
    PlacementCost,
    PlacementDecision,
    PlacementKind,
    Placer,
)
from repro.serve.scheduler import PriorityScheduler, QueuePressure
from repro.serve.service import (
    BeamformingService,
    RequestOutcome,
    ServiceReport,
    StageLink,
)
from repro.serve.slo import (
    SLO,
    AdmissionController,
    ClassStats,
    FleetTimeline,
    SLOTracker,
    percentile,
)
from repro.serve.workload import PipelineWorkload, Request, Stage, Workload

__all__ = [
    "Workload",
    "Request",
    "Stage",
    "PipelineWorkload",
    "StageLink",
    "poisson_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "merge_arrivals",
    "RateForecast",
    "fit_rate_forecast",
    "BatchingPolicy",
    "MicroBatcher",
    "Batch",
    "PlanCache",
    "CachedPlan",
    "DeviceWorker",
    "FleetDispatcher",
    "BatchExecution",
    "Placer",
    "PlacementCost",
    "PlacementDecision",
    "PlacementKind",
    "PriorityScheduler",
    "QueuePressure",
    "Autoscaler",
    "AutoscalePolicy",
    "FleetSignals",
    "ReactiveAutoscaler",
    "PredictiveAutoscaler",
    "ScaleAction",
    "ScaleEvent",
    "ScaleKind",
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "crash_storm",
    "ResiliencePolicy",
    "SLO",
    "AdmissionController",
    "ClassStats",
    "FleetTimeline",
    "SLOTracker",
    "percentile",
    "BeamformingService",
    "RequestOutcome",
    "ServiceReport",
    "TraceRecorder",
    "NULL_RECORDER",
    "MetricsRegistry",
    "RequestPath",
    "BlameReport",
    "render_trace",
    "write_trace",
    "ServiceMonitor",
    "TimeSeries",
    "Alert",
    "AlertEngine",
    "BurnRateRule",
    "ErrorBudget",
    "render_dashboard",
    "write_dashboard",
]
