"""Dynamic micro-batching: coalesce compatible requests into one launch.

The tensor cores only pay off when the GEMM is large enough to fill the
device (wave quantization and launch overhead dominate small problems —
exactly what the paper's performance model predicts for per-request
shapes). The :class:`MicroBatcher` therefore holds arriving requests
briefly and flushes a group as one merged
:class:`~repro.tcbf.plan.BeamformerPlan` execution when either

* ``max_batch`` compatible requests have accumulated (size trigger), or
* the oldest request has waited ``max_wait_s`` (latency trigger).

Compatibility is the workload's :meth:`~repro.serve.workload.Workload.compat_key`
— same shape, precision, stage accounting, weight-set generation, priority
class, and tenant. ``max_batch = 1`` degenerates to naive per-request
execution, which the service benchmark uses as its baseline.

Priority classes may override the knobs per class (``class_policies``): an
interactive class runs a tight ``max_wait_s`` (bound the batching delay, give
up batching depth), a throughput class runs a deep ``max_batch`` (amortize
launches, tolerate wait). Because the compat key carries the priority, the
override applies uniformly to every group of that class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ShapeError
from repro.serve.workload import Request, Workload


@dataclass(frozen=True)
class BatchingPolicy:
    """Knobs of the micro-batcher.

    ``max_batch``: requests per merged launch (the size trigger);
    ``max_wait_s``: longest a request may sit in a forming batch before the
    latency trigger flushes it — the explicit latency/throughput trade-off.
    """

    max_batch: int = 8
    max_wait_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ShapeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_s < 0:
            raise ShapeError(f"max_wait_s must be >= 0, got {self.max_wait_s}")


@dataclass
class Batch:
    """A flushed group of compatible requests, ready for dispatch."""

    bid: int
    workload: Workload
    requests: list[Request]
    #: simulated time the batch left the batcher (its dispatch time).
    formed_s: float

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def merged_batch(self) -> int:
        """Batch extent of the merged plan execution."""
        return self.n_requests * self.workload.batch_per_request

    @property
    def priority(self) -> int:
        """Scheduling class of every member (lower is more urgent)."""
        return self.workload.priority

    @property
    def tenant(self) -> str:
        """The one caller this launch is accountable to."""
        return self.workload.tenant

    @property
    def oldest_arrival_s(self) -> float:
        return self.requests[0].arrival_s

    @property
    def batching_delay_s(self) -> float:
        """Time the oldest member spent waiting for the batch to form."""
        return self.formed_s - self.oldest_arrival_s


@dataclass
class _Group:
    """A forming batch: members, latency-trigger deadline, creation order."""

    requests: list[Request] = field(default_factory=list)
    deadline_s: float = 0.0
    #: monotone creation sequence — the deterministic flush tie-break.
    seq: int = 0


class MicroBatcher:
    """Groups requests by compatibility key under a :class:`BatchingPolicy`.

    Purely event-driven and deterministic: the caller advances time through
    the ``now`` arguments, and ties between simultaneously-due groups break
    on (deadline, insertion order).
    """

    def __init__(
        self,
        policy: BatchingPolicy,
        class_policies: dict[int, BatchingPolicy] | None = None,
    ):
        self.policy = policy
        #: per-priority-class knob overrides; classes not listed use ``policy``.
        self.class_policies = dict(class_policies) if class_policies else {}
        self._groups: dict[tuple, _Group] = {}
        self._next_bid = 0
        self._next_seq = 0
        #: lifetime counters for the service report.
        self.n_offered = 0
        self.n_flushed_full = 0
        self.n_flushed_timer = 0

    def policy_for(self, priority: int) -> BatchingPolicy:
        """The knobs governing one priority class (override or default)."""
        return self.class_policies.get(priority, self.policy)

    def depth(self) -> int:
        """Requests currently waiting in forming batches."""
        return sum(len(g.requests) for g in self._groups.values())

    def next_deadline(self) -> float | None:
        """Earliest latency-trigger deadline among forming batches."""
        if not self._groups:
            return None
        return min(g.deadline_s for g in self._groups.values())

    def offer(self, request: Request, now: float) -> Batch | None:
        """Add one request; returns a batch iff the size trigger fired.

        The caller is responsible for draining timer-due groups first
        (:meth:`due`) so a request never joins a group whose deadline has
        already passed.
        """
        key = request.workload.compat_key()
        policy = self.policy_for(request.workload.priority)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _Group(
                deadline_s=now + policy.max_wait_s, seq=self._next_seq
            )
            self._next_seq += 1
        group.requests.append(request)
        self.n_offered += 1
        if len(group.requests) >= policy.max_batch:
            self.n_flushed_full += 1
            return self._flush(key, now)
        return None

    def due(self, now: float) -> list[Batch]:
        """Flush every group whose latency trigger has fired by ``now``.

        Returned in deadline order; each batch's ``formed_s`` is its own
        deadline (the timer fired then, not at the observation instant).
        """
        due_keys = sorted(
            (key for key, g in self._groups.items() if g.deadline_s <= now),
            key=lambda key: (self._groups[key].deadline_s, self._groups[key].seq),
        )
        batches = []
        for key in due_keys:
            self.n_flushed_timer += 1
            batches.append(self._flush(key, self._groups[key].deadline_s))
        return batches

    def flush_all(self) -> list[Batch]:
        """Drain every forming batch at its deadline (end-of-trace flush)."""
        keys = sorted(
            self._groups,
            key=lambda key: (self._groups[key].deadline_s, self._groups[key].seq),
        )
        batches = []
        for key in keys:
            self.n_flushed_timer += 1
            batches.append(self._flush(key, self._groups[key].deadline_s))
        return batches

    def _flush(self, key: tuple, formed_s: float) -> Batch:
        group = self._groups.pop(key)
        batch = Batch(
            bid=self._next_bid,
            workload=group.requests[0].workload,
            requests=group.requests,
            formed_s=formed_s,
        )
        self._next_bid += 1
        return batch
