"""Dynamic micro-batching: coalesce compatible requests into one launch.

The tensor cores only pay off when the GEMM is large enough to fill the
device (wave quantization and launch overhead dominate small problems —
exactly what the paper's performance model predicts for per-request
shapes). The :class:`MicroBatcher` therefore holds arriving requests
briefly and flushes a group as one merged
:class:`~repro.tcbf.plan.BeamformerPlan` execution when either

* ``max_batch`` compatible requests have accumulated (size trigger), or
* the oldest request has waited ``max_wait_s`` (latency trigger).

Compatibility is the workload's :meth:`~repro.serve.workload.Workload.compat_key`
— same shape, precision, stage accounting, weight-set generation, priority
class, and tenant. ``max_batch = 1`` degenerates to naive per-request
execution, which the service benchmark uses as its baseline.

Priority classes may override the knobs per class (``class_policies``): an
interactive class runs a tight ``max_wait_s`` (bound the batching delay, give
up batching depth), a throughput class runs a deep ``max_batch`` (amortize
launches, tolerate wait). Because the compat key carries the priority, the
override applies uniformly to every group of that class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ShapeError
from repro.serve.obs.events import BatchClosed, BatcherEnqueued
from repro.serve.obs.trace import NULL_RECORDER
from repro.serve.workload import Request, Workload

if TYPE_CHECKING:
    from repro.serve.placement import PlacementDecision


@dataclass(frozen=True)
class BatchingPolicy:
    """Knobs of the micro-batcher.

    ``max_batch``: requests per merged launch (the size trigger);
    ``max_wait_s``: longest a request may sit in a forming batch before the
    latency trigger flushes it — the explicit latency/throughput trade-off.

    ``sample_buckets``: ascending shape-bucket edges along the sample axis.
    When set, a request whose ``n_samples`` is at most an edge is padded up
    to the smallest such edge, so *nearby* shapes share one merged launch
    instead of each forming its own trickle of small batches. The padded
    columns are real work the cost model prices (the plan is built at the
    bucket's shape). ``max_pad_fraction`` bounds the relative padding a
    bucket may impose — a 64-sample request must not be padded 32x to a
    2048 edge just because the edge exists; shapes whose nearest edge would
    exceed the budget (and shapes beyond the largest edge) batch at their
    exact shape. Empty ``sample_buckets`` (the default) means exact-shape
    batching.
    """

    max_batch: int = 8
    max_wait_s: float = 1e-3
    sample_buckets: tuple[int, ...] = ()
    #: largest tolerated (padded - exact) / exact along the sample axis.
    max_pad_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ShapeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_s < 0:
            raise ShapeError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if list(self.sample_buckets) != sorted(set(self.sample_buckets)):
            raise ShapeError(
                f"sample_buckets must be strictly ascending, got {self.sample_buckets}"
            )
        if self.sample_buckets and self.sample_buckets[0] < 1:
            raise ShapeError(f"sample_buckets must be >= 1, got {self.sample_buckets}")
        if self.max_pad_fraction < 0:
            raise ShapeError(f"max_pad_fraction must be >= 0, got {self.max_pad_fraction}")

    def bucket_samples(self, n_samples: int) -> int:
        """The padded sample count of one request (identity when unbucketed).

        The smallest covering bucket edge within the padding budget; the
        exact shape when no edge qualifies.
        """
        for edge in self.sample_buckets:
            if edge >= n_samples:
                if (edge - n_samples) / n_samples <= self.max_pad_fraction:
                    return edge
                break
        return n_samples


@dataclass
class Batch:
    """A flushed group of compatible requests, ready for dispatch.

    ``workload`` is the *executed* descriptor: for a shape-bucketed batch it
    is the padded bucket workload, while each member request keeps its own
    exact-shape workload (the padding is trimmed back per request after the
    launch). ``decision`` carries the placement decision that admitted the
    batch; ``predicted_service_s`` is the placer's best-device service
    estimate, stamped at submit time for queue-drain admission estimates.
    """

    bid: int
    workload: Workload
    requests: list[Request]
    #: simulated time the batch left the batcher (its dispatch time).
    formed_s: float
    #: placement decision that routed this batch (None on direct dispatch).
    decision: "PlacementDecision | None" = None
    #: placer's predicted service time on the best eligible device, seconds.
    predicted_service_s: float = 0.0
    #: worker indices this batch may run on, stamped once at submit time
    #: (capability and memory fit are static per batch, so the dispatcher
    #: never re-derives them per event).
    candidate_indices: tuple[int, ...] | None = None
    #: earliest instant a locality-held stage batch should be retried —
    #: the busy buffer-resident worker's ``accept_s``, stamped when the
    #: placer prefers waiting for it over an immediate remote transfer.
    #: ``None`` (always, for legacy batches) defers to the candidates'
    #: plain worker-availability times.
    hold_until_s: float | None = None

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def merged_batch(self) -> int:
        """Batch extent of the merged plan execution."""
        return self.n_requests * self.workload.batch_per_request

    @property
    def useful_ops(self) -> float:
        """GEMM operations the member requests actually asked for."""
        return sum(r.workload.request_ops() for r in self.requests)

    @property
    def executed_ops(self) -> float:
        """GEMM operations of the launch as executed (padding included)."""
        return self.workload.request_ops() * self.n_requests

    @property
    def padded_ops(self) -> float:
        """Operations spent on bucket padding (0 for exact-shape batches)."""
        return self.executed_ops - self.useful_ops

    @property
    def priority(self) -> int:
        """Scheduling class of every member (lower is more urgent)."""
        return self.workload.priority

    @property
    def tenant(self) -> str:
        """The one caller this launch is accountable to."""
        return self.workload.tenant

    @property
    def oldest_arrival_s(self) -> float:
        return self.requests[0].arrival_s

    @property
    def batching_delay_s(self) -> float:
        """Time the oldest member spent waiting for the batch to form."""
        return self.formed_s - self.oldest_arrival_s

    # -- pipeline-stage residency (zero for legacy single-kernel batches) ----

    @property
    def stage_input_bytes(self) -> int:
        """Inter-stage buffer bytes the member requests carry as input.

        Non-zero only for successor-stage batches of multi-stage pipelines
        — the quantity placement prices as resident (no cost) or
        transferred (interconnect cost) per candidate worker.
        """
        return sum(r.stage_input_bytes for r in self.requests)

    def resident_bytes_on(self, worker_index: int) -> int:
        """Input bytes already resident on ``worker_index``.

        A request's dependency outputs live on the workers that executed
        its predecessor stages; landing the batch there elides that share
        of the stage-in and its transfer.
        """
        return sum(
            r.stage_input_bytes for r in self.requests if worker_index in r.resident_workers
        )


@dataclass
class _Group:
    """A forming batch: members, latency-trigger deadline, creation order."""

    requests: list[Request] = field(default_factory=list)
    deadline_s: float = 0.0
    #: monotone creation sequence — the deterministic flush tie-break.
    seq: int = 0
    #: the workload the flushed batch executes (padded for shape buckets).
    workload: Workload | None = None
    #: the placement decision shared by every member of the group.
    decision: "PlacementDecision | None" = None


class MicroBatcher:
    """Groups requests by compatibility key under a :class:`BatchingPolicy`.

    Purely event-driven and deterministic: the caller advances time through
    the ``now`` arguments, and ties between simultaneously-due groups break
    on (deadline, insertion order).
    """

    def __init__(
        self,
        policy: BatchingPolicy,
        class_policies: dict[int, BatchingPolicy] | None = None,
    ):
        self.policy = policy
        #: per-priority-class knob overrides; classes not listed use ``policy``.
        self.class_policies = dict(class_policies) if class_policies else {}
        self._groups: dict[tuple, _Group] = {}
        self._next_bid = 0
        self._next_seq = 0
        #: lifetime counters for the service report.
        self.n_offered = 0
        self.n_flushed_full = 0
        self.n_flushed_timer = 0
        #: trace recorder (the service binds its own; default disabled).
        self.recorder = NULL_RECORDER
        #: optional metrics registry ("batcher.*" counters).
        self.metrics = None

    def policy_for(self, priority: int) -> BatchingPolicy:
        """The knobs governing one priority class (override or default)."""
        return self.class_policies.get(priority, self.policy)

    def depth(self) -> int:
        """Requests currently waiting in forming batches."""
        return sum(len(g.requests) for g in self._groups.values())

    def forming_workloads(self):
        """Iterate the workload of every forming batch (flush order).

        The dispatcher's retirement guard consumes this: work already
        admitted into a forming batch must keep at least one capable
        worker alive until it flushes (see
        :meth:`FleetDispatcher.reap <repro.serve.dispatch.FleetDispatcher.reap>`).
        """
        for group in self._groups.values():
            yield (group.workload if group.workload is not None else group.requests[0].workload)

    def next_deadline(self) -> float | None:
        """Earliest latency-trigger deadline among forming batches."""
        if not self._groups:
            return None
        return min(g.deadline_s for g in self._groups.values())

    def offer(
        self,
        request: Request,
        now: float,
        decision: "PlacementDecision | None" = None,
    ) -> Batch | None:
        """Add one request; returns a batch iff the size trigger fired.

        ``decision`` optionally carries the placement decision governing the
        request; its (possibly bucket-padded) workload keys the group, so
        requests of nearby shapes that share a bucket coalesce into one
        launch at the padded shape. Without a decision the request's own
        workload keys the group — exact-shape batching.

        The caller is responsible for draining timer-due groups first
        (:meth:`due`) so a request never joins a group whose deadline has
        already passed.
        """
        merged = decision.workload if decision is not None else request.workload
        key = merged.compat_key()
        policy = self.policy_for(request.workload.priority)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _Group(
                deadline_s=now + policy.max_wait_s,
                seq=self._next_seq,
                workload=merged,
                decision=decision,
            )
            self._next_seq += 1
        group.requests.append(request)
        self.n_offered += 1
        if self.metrics is not None:
            self.metrics.inc("batcher.offered")
        if self.recorder.enabled:
            self.recorder.emit(
                BatcherEnqueued(
                    t_s=now,
                    rid=request.rid,
                    workload=merged.name,
                    group_seq=group.seq,
                    n_waiting=len(group.requests),
                )
            )
        if len(group.requests) >= policy.max_batch:
            self.n_flushed_full += 1
            return self._flush(key, now, cause="max_batch")
        return None

    def due(self, now: float) -> list[Batch]:
        """Flush every group whose latency trigger has fired by ``now``.

        Returned in deadline order; each batch's ``formed_s`` is its own
        deadline (the timer fired then, not at the observation instant).
        """
        due_keys = sorted(
            (key for key, g in self._groups.items() if g.deadline_s <= now),
            key=lambda key: (self._groups[key].deadline_s, self._groups[key].seq),
        )
        batches = []
        for key in due_keys:
            self.n_flushed_timer += 1
            batches.append(self._flush(key, self._groups[key].deadline_s, cause="max_wait"))
        return batches

    def flush_all(self) -> list[Batch]:
        """Drain every forming batch at its deadline (end-of-trace flush)."""
        keys = sorted(
            self._groups,
            key=lambda key: (self._groups[key].deadline_s, self._groups[key].seq),
        )
        batches = []
        for key in keys:
            self.n_flushed_timer += 1
            batches.append(self._flush(key, self._groups[key].deadline_s, cause="max_wait"))
        return batches

    def _flush(self, key: tuple, formed_s: float, cause: str = "max_wait") -> Batch:
        group = self._groups.pop(key)
        workload = group.workload if group.workload is not None else group.requests[0].workload
        batch = Batch(
            bid=self._next_bid,
            workload=workload,
            requests=group.requests,
            formed_s=formed_s,
            decision=group.decision,
        )
        self._next_bid += 1
        self._record_close(batch, cause)
        return batch

    def _record_close(self, batch: Batch, cause: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(f"batcher.flush.{cause}")
        if self.recorder.enabled:
            self.recorder.emit(
                BatchClosed(
                    t_s=batch.formed_s,
                    bid=batch.bid,
                    cause=cause,
                    workload=batch.workload.name,
                    priority=batch.priority,
                    tenant=batch.tenant,
                    rids=tuple(r.rid for r in batch.requests),
                )
            )

    def singleton(self, request: Request, now: float, decision=None) -> Batch:
        """Wrap one request as its own batch, bypassing group formation.

        The split-placement path: a request too large for any single device
        never coalesces with others — it becomes an immediate one-request
        batch (unique ``bid`` from the same counter) that the scheduler
        still orders by priority before the fleet shards it.
        """
        self.n_offered += 1
        if self.metrics is not None:
            self.metrics.inc("batcher.offered")
        batch = Batch(
            bid=self._next_bid,
            workload=request.workload,
            requests=[request],
            formed_s=now,
            decision=decision,
        )
        self._next_bid += 1
        self._record_close(batch, cause="decision")
        return batch
