"""Fault injection and resilience policies for the serving tier.

At the north star's scale — millions of users on an always-on fleet —
failures are the steady state: GPUs drop off the bus, a neighbour's job
turns one worker into a straggler, replacements arrive cold. This module
makes those events first-class citizens of the discrete-event simulation:

* :class:`FaultPlan` — a seeded, deterministic schedule of
  :class:`FaultEvent`\\ s (crashes, transient slowdowns, replacements)
  merged into :meth:`BeamformingService.run
  <repro.serve.service.BeamformingService.run>` as one more event source.
  A crash is the *non-graceful* cousin of PR 5's drain: the worker leaves
  immediately and everything in flight on it is lost, not finished.
* :class:`ResiliencePolicy` — the recovery knobs the service absorbs the
  plan with: per-class retry budgets with deadline-aware re-placement
  through the existing :class:`~repro.serve.placement.Placer`, hedged
  dispatch for batches stuck on a straggler (first completion wins, the
  loser's compute is charged as waste, never hidden), shard-failure
  recovery for split requests (only the lost shard re-executes, on a
  surviving capable worker), and plan-cache re-warm on replacements.
* :func:`crash_storm` — the canonical seeded storm generator the
  "serve-resilience" bench replays: crash + replacement + straggler
  windows over a horizon, bit-reproducible for a fixed seed.

Determinism contract: a service constructed with ``faults=None`` (or an
empty plan) takes exactly the legacy code paths — every existing golden
CSV, trace, and dashboard digest replays byte-identically — and a faulted
run is itself bit-reproducible: same plan, same seed, same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ShapeError
from repro.util.rng import derive_seed, make_rng


class FaultKind(Enum):
    """The fault-event vocabulary the service's handler dispatches on."""

    #: the worker leaves the fleet *now*; its in-flight work is lost.
    CRASH = "crash"
    #: the worker's compute rate degrades by ``factor`` (a straggler).
    SLOW_START = "slow_start"
    #: the straggler recovers to full rate (flapping = repeated pairs).
    SLOW_END = "slow_end"
    #: a replacement device joins the fleet (cold cache, startup delay).
    REPLACE = "replace"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault on the simulation clock.

    ``worker_index`` targets crash/slow events (the *declared* index, so a
    plan written against the seed fleet stays meaningful after scale-ups);
    ``factor`` is the slowdown multiplier (>= 1) of a ``SLOW_START``;
    ``device_name``/``startup_s`` describe a ``REPLACE``'s newcomer.
    """

    t_s: float
    kind: FaultKind
    worker_index: int = -1
    factor: float = 1.0
    device_name: str = ""
    startup_s: float = 0.0

    def __post_init__(self) -> None:
        if self.t_s < 0:
            raise ShapeError(f"fault time must be non-negative, got {self.t_s}")
        if self.factor < 1.0:
            raise ShapeError(f"slowdown factor must be >= 1, got {self.factor}")
        if self.kind in (FaultKind.CRASH, FaultKind.SLOW_START, FaultKind.SLOW_END):
            if self.worker_index < 0:
                raise ShapeError(f"{self.kind.value} fault needs a worker_index")
        if self.kind is FaultKind.REPLACE and not self.device_name:
            raise ShapeError("replace fault needs a device_name")
        if self.startup_s < 0:
            raise ShapeError(f"startup_s must be non-negative, got {self.startup_s}")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, time-sorted schedule of fault events.

    The plan is data, not behavior: the service walks it as one more event
    source, consuming one event per loop iteration. An empty plan is
    equivalent to no plan at all (the service falls back to the legacy
    zero-overhead paths).
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for earlier, later in zip(self.events, self.events[1:]):
            if later.t_s < earlier.t_s:
                raise ShapeError(
                    f"fault plan must be time-sorted: {later.t_s} after {earlier.t_s}"
                )

    def __len__(self) -> int:
        return len(self.events)

    @property
    def n_crashes(self) -> int:
        return sum(1 for e in self.events if e.kind is FaultKind.CRASH)


def crash_storm(
    horizon_s: float,
    worker_indices: list[int],
    n_crashes: int = 1,
    n_slow_windows: int = 2,
    slow_factor: float = 4.0,
    slow_window_s: float | None = None,
    replace_device: str = "",
    replace_startup_s: float = 0.0,
    seed: int = 0,
) -> FaultPlan:
    """A seeded crash + straggler storm over ``[0, horizon_s)``.

    ``n_crashes`` workers (drawn without replacement from
    ``worker_indices``) crash at uniform instants in the middle 80% of the
    horizon; each crash is followed by a replacement (``replace_device``
    joining ``replace_startup_s`` later) when a device name is given.
    ``n_slow_windows`` transient slowdowns of ``slow_factor``x land on the
    surviving workers, each lasting ``slow_window_s`` (default: 10% of the
    horizon). Bit-deterministic for a fixed seed.
    """
    if horizon_s <= 0:
        raise ShapeError(f"horizon must be positive, got {horizon_s}")
    if not worker_indices:
        raise ShapeError("crash_storm needs at least one worker index")
    if n_crashes > len(worker_indices):
        raise ShapeError(
            f"cannot crash {n_crashes} of {len(worker_indices)} workers"
        )
    window_s = horizon_s * 0.1 if slow_window_s is None else slow_window_s
    rng = make_rng(derive_seed(seed, "crash_storm", horizon_s, n_crashes))
    events: list[FaultEvent] = []
    order = [worker_indices[i] for i in rng.permutation(len(worker_indices))]
    crashed = order[:n_crashes]
    for index in crashed:
        t = float(rng.uniform(0.1, 0.9)) * horizon_s
        events.append(FaultEvent(t_s=t, kind=FaultKind.CRASH, worker_index=index))
        if replace_device:
            events.append(
                FaultEvent(
                    t_s=t,
                    kind=FaultKind.REPLACE,
                    device_name=replace_device,
                    startup_s=replace_startup_s,
                )
            )
    survivors = order[n_crashes:] or order
    for i in range(n_slow_windows):
        index = survivors[int(rng.integers(len(survivors)))]
        t = float(rng.uniform(0.0, max(horizon_s - window_s, 0.0)))
        events.append(
            FaultEvent(
                t_s=t, kind=FaultKind.SLOW_START, worker_index=index, factor=slow_factor
            )
        )
        events.append(
            FaultEvent(t_s=t + window_s, kind=FaultKind.SLOW_END, worker_index=index)
        )
    events.sort(key=lambda e: (e.t_s, e.kind.value, e.worker_index))
    return FaultPlan(events=tuple(events))


@dataclass(frozen=True)
class ResiliencePolicy:
    """The recovery knobs a faulted service runs with.

    ``max_retries`` is the default per-request retry budget;
    ``class_retries`` overrides it per priority class (an interactive
    class may deserve more attempts than bulk reprocessing — or fewer, if
    its deadline cannot absorb them anyway). A retry is only submitted
    when its deadline-aware re-placement projects a finish within
    ``retry_deadline_factor`` times the admission deadline; otherwise the
    request fails fast instead of wasting a doomed launch.

    ``hedge_slow_threshold`` arms hedged dispatch: a batch landing on a
    worker whose slowdown factor is at or past the threshold gets a second
    launch on the best healthy candidate. First completion wins; the
    loser's compute is added to the report's wasted-device-seconds — the
    honest bill of hedging. ``inf`` disables hedging.

    ``recover_shards`` re-executes only the lost shard of a split request
    on a surviving capable worker; ``rewarm_plans`` pre-builds the most
    recent ``rewarm_limit`` workloads' plans on a replacement worker
    before it takes traffic (cold-start paid up front, on the replacement,
    instead of by the first unlucky batches).
    """

    max_retries: int = 2
    class_retries: dict[int, int] | None = field(default=None)
    retry_deadline_factor: float = 1.0
    hedge_slow_threshold: float = 2.0
    recover_shards: bool = True
    rewarm_plans: bool = True
    rewarm_limit: int = 8

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ShapeError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_deadline_factor <= 0:
            raise ShapeError(
                f"retry_deadline_factor must be positive, got {self.retry_deadline_factor}"
            )
        if self.hedge_slow_threshold < 1.0:
            raise ShapeError(
                f"hedge_slow_threshold must be >= 1, got {self.hedge_slow_threshold}"
            )
        if self.rewarm_limit < 0:
            raise ShapeError(f"rewarm_limit must be >= 0, got {self.rewarm_limit}")

    def budget(self, priority: int) -> int:
        """Retry budget of one priority class."""
        if self.class_retries and priority in self.class_retries:
            return self.class_retries[priority]
        return self.max_retries

    @classmethod
    def disabled(cls) -> "ResiliencePolicy":
        """No recovery at all — the bench's honest no-recovery baseline."""
        return cls(
            max_retries=0,
            hedge_slow_threshold=float("inf"),
            recover_shards=False,
            rewarm_plans=False,
        )
