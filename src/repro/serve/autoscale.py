"""Elastic fleets: autoscaling policies over the placement layer.

The paper's throughput numbers assume a fixed device set; a serving tier
does not get that luxury — clinic-hours ultrasound traffic swings by an
order of magnitude over a day, and provisioning for the peak wastes most
of the fleet most of the time (the same provisioning-to-ingest-rate
matching that sizes pipeline stages in GPU-powered beamforming deployments).
This module grows and shrinks the simulated fleet *during* a trace:

* the :class:`Autoscaler` is a fourth event source of the service loop —
  every ``interval_s`` of simulated time it snapshots the fleet's
  :class:`FleetSignals` and consults its policy;
* policies are pure deciders (:class:`AutoscalePolicy`): signals in, at
  most one :class:`ScaleAction` out. Two are provided — the
  :class:`ReactiveAutoscaler` (scale up on sustained queue-pressure per
  capability class, down on sustained idle) and the
  :class:`PredictiveAutoscaler` (diurnal-aware: sizes the fleet against
  the arrival generators' :class:`~repro.serve.arrivals.RateForecast`,
  a lead time ahead);
* actions act *through the placement layer*: a scale-up appends a worker
  to the live list the :class:`~repro.serve.placement.Placer` routes
  over (queued and held batches are re-stamped so waiting work can use
  the newcomer immediately), and a scale-down marks a worker draining so
  placement stops targeting it while committed work finishes.

Honesty rules, mirroring the rest of the serving tier:

* *Cold start is charged, never hidden.* A scaled-up worker starts with
  an empty plan-cache segment and engines that free up only after the
  modelled ``startup_s``; its first batches pay the one-time plan builds
  on their own critical path, exactly as PR 2 charges cache misses.
* *Scale-down is non-destructive.* Mirroring PR 3's preemption rule, a
  draining worker finishes its in-flight batches; everything queued or
  held against it re-routes to the remaining fleet; it is retired only
  when idle and unreferenced, at which point its plan-cache segment is
  released (:meth:`PlanCache.release <repro.serve.cache.PlanCache.release>`).
* *The seed fleet is the floor.* The autoscaler drains only workers it
  added (most-recent-first), so ``min_workers`` equals the fleet the
  service was constructed with and capability anchors (the one NVIDIA
  device of a mixed fleet, say) never disappear underneath int1 traffic.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.errors import ShapeError
from repro.gpusim.device import Device
from repro.serve.arrivals import RateForecast
from repro.serve.scheduler import QueuePressure

if TYPE_CHECKING:
    from repro.serve.dispatch import DeviceWorker, FleetDispatcher

#: default autoscaler evaluation interval (simulated seconds).
DEFAULT_INTERVAL_S = 200e-6


class ScaleKind(enum.Enum):
    """Direction of one scaling action."""

    UP = "up"
    DOWN = "down"


@dataclass(frozen=True)
class ScaleAction:
    """A policy's verdict at one tick: grow or shrink the fleet by ``n``."""

    kind: ScaleKind
    n: int = 1
    reason: str = ""

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ShapeError(f"scale action count must be >= 1, got {self.n}")


@dataclass(frozen=True)
class ScaleEvent:
    """One applied fleet change, as reports record it.

    ``kind`` is ``"up"`` (worker provisioned), ``"down"`` (drain began),
    or ``"retire"`` (drained worker left the fleet). ``accepting`` /
    ``provisioned`` are the fleet sizes right after the event.
    """

    t_s: float
    kind: str
    worker_index: int
    device_name: str
    accepting: int
    provisioned: int
    reason: str = ""


@dataclass(frozen=True)
class FleetSignals:
    """What a policy sees at one tick — arrival-time information only.

    ``pressure_by_priority`` merges the scheduler's queues with the
    dispatcher's held batches; ``drain_s_by_capability`` is the predicted
    queue-drain time per capability class (a pool with queued work and no
    accepting worker reports ``inf``). Forming batches still inside the
    micro-batcher are deliberately excluded: they wait by policy
    (``max_wait_s``), not because the fleet is behind.

    ``firing_alerts`` counts the service monitor's burn-rate alerts
    currently in the firing state (0 on unmonitored runs): error budget
    burning *now* is a scale-up signal the queue numbers can lag behind —
    shed storms burn budget at the front door, before any queue forms.
    """

    t_s: float
    n_accepting: int
    n_draining: int
    queued_requests: int
    queued_service_s: float
    pressure_by_priority: dict[int, QueuePressure]
    drain_s_by_capability: dict[str, float]
    busy_workers: int
    firing_alerts: int = 0

    @property
    def n_provisioned(self) -> int:
        return self.n_accepting + self.n_draining

    @property
    def pressure_s(self) -> float:
        """The scale-up signal: worst per-capability predicted drain."""
        return max(self.drain_s_by_capability.values(), default=0.0)

    @property
    def busy_fraction(self) -> float:
        """Share of accepting workers with a non-empty compute backlog."""
        return self.busy_workers / self.n_accepting if self.n_accepting else 0.0


class AutoscalePolicy(Protocol):
    """A pure scaling decider: fleet signals in, at most one action out.

    Implementations may keep internal trend state (the reactive policy
    counts consecutive pressured/idle ticks) but must be deterministic —
    the same tick sequence always yields the same actions, which is what
    keeps whole autoscaled service runs bit-reproducible.
    """

    def decide(self, signals: FleetSignals) -> ScaleAction | None: ...


@dataclass
class ReactiveAutoscaler:
    """Scale on what the queues are doing right now.

    Scale **up** when the worst per-capability predicted queue-drain time
    (:attr:`FleetSignals.pressure_s`) has exceeded ``up_pressure_s`` for
    ``up_ticks`` consecutive ticks — sustained pressure, not a single
    burst the batcher would absorb anyway. The step is proportional to
    how far past the threshold the pressure is (one worker per threshold
    multiple, capped at ``max_step``): a fleet twice as far behind gets
    capacity twice as fast. Scale **down** when the fleet has been idle
    for ``down_ticks`` consecutive ticks. Both counters reset on any
    contrary observation, so oscillating load keeps the fleet where it
    is. Reaction is this policy's whole character — it cannot tell a
    draining backlog from a rising rate, so it pays a lag (and its
    cold-start bill) on every fresh peak; that is exactly what the
    predictive policy exists to avoid.
    """

    #: predicted drain seconds that count as pressure (e.g. a fraction of
    #: the SLO deadline — queue time this long will bust the tail).
    up_pressure_s: float
    up_ticks: int = 2
    down_ticks: int = 5
    #: largest single scale-up step (workers per action).
    max_step: int = 4
    #: a tick is "idle" when nothing is queued and at most this fraction
    #: of accepting workers has a compute backlog.
    idle_busy_fraction: float = 0.5
    #: opt-in: treat a firing burn-rate alert as a pressured tick even when
    #: the queues look calm — error budget burns at the front door (shed
    #: storms) before queue drain ever crosses ``up_pressure_s``. Off by
    #: default, so existing queue-pressure-only runs replay byte-identically.
    alert_burn_up: bool = False
    _pressured: int = field(default=0, init=False, repr=False)
    _idle: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.up_pressure_s <= 0:
            raise ShapeError(f"up_pressure_s must be positive, got {self.up_pressure_s}")
        if self.up_ticks < 1 or self.down_ticks < 1:
            raise ShapeError("tick thresholds must be >= 1")
        if self.max_step < 1:
            raise ShapeError(f"max_step must be >= 1, got {self.max_step}")
        if not 0.0 <= self.idle_busy_fraction <= 1.0:
            raise ShapeError(f"idle_busy_fraction must be in [0, 1], got {self.idle_busy_fraction}")

    def decide(self, signals: FleetSignals) -> ScaleAction | None:
        idle = signals.queued_requests == 0 and signals.busy_fraction <= self.idle_busy_fraction
        burning = self.alert_burn_up and signals.firing_alerts > 0
        if signals.pressure_s >= self.up_pressure_s or burning:
            self._pressured += 1
            self._idle = 0
            if self._pressured >= self.up_ticks:
                self._pressured = 0
                if signals.pressure_s >= self.up_pressure_s:
                    # pressure_s is inf when a capability's accepting pool
                    # is empty — the strongest possible signal, not an
                    # error.
                    ratio = signals.pressure_s / self.up_pressure_s
                    step = self.max_step if math.isinf(ratio) else min(self.max_step, int(ratio))
                    reason = (
                        f"queue drain {signals.pressure_s * 1e3:.3f} ms >= "
                        f"{self.up_pressure_s * 1e3:.3f} ms for {self.up_ticks} ticks"
                    )
                else:
                    step = 1
                    reason = (
                        f"{signals.firing_alerts} burn-rate alert(s) firing "
                        f"for {self.up_ticks} ticks"
                    )
                return ScaleAction(ScaleKind.UP, n=max(1, step), reason=reason)
        elif idle:
            self._idle += 1
            self._pressured = 0
            if self._idle >= self.down_ticks:
                self._idle = 0
                return ScaleAction(
                    ScaleKind.DOWN,
                    reason=f"idle for {self.down_ticks} ticks",
                )
        else:
            self._pressured = 0
            self._idle = 0
        return None


@dataclass
class PredictiveAutoscaler:
    """Size the fleet against a known rate forecast, a lead window ahead.

    Diurnal traffic is *scheduled* — the profile driving
    :func:`~repro.serve.arrivals.diurnal_arrivals` is exactly what an
    operator would configure — so the policy need not wait for queues to
    build: at each tick it sizes the fleet for the **highest** forecast
    rate inside the provisioning window ``[t, t + lead_s]``, with
    ``headroom`` margin. The window max (not the point forecast) is what
    makes the policy calm where the reactive one thrashes: capacity must
    already exist for any traffic arriving sooner than a new worker could
    be made ready, and a trough narrower than the window is ridden out
    *warm* instead of drained and re-provisioned cold for the next peak.
    Scale-ups jump straight to the target (the peak will not wait);
    scale-downs step one worker per tick (draining is cheap, thrash is
    not).
    """

    forecast: RateForecast
    #: sustained requests/s one worker serves for this traffic mix.
    capacity_hz: float
    #: provisioning window: startup latency + plan warmup + margin.
    lead_s: float
    #: capacity margin over the forecast rate (>= 1.0).
    headroom: float = 1.2
    #: keep-warm window for scale-*down* decisions: capacity is shed only
    #: when the forecast shows no need for it over this longer horizon,
    #: so a trough shorter than ``hold_s`` is ridden out warm instead of
    #: repaying the cold start on the next peak. ``None`` means ``lead_s``
    #: (symmetric windows).
    hold_s: float | None = None

    def __post_init__(self) -> None:
        if self.capacity_hz <= 0:
            raise ShapeError(f"capacity_hz must be positive, got {self.capacity_hz}")
        if self.lead_s < 0:
            raise ShapeError(f"lead_s must be >= 0, got {self.lead_s}")
        if self.headroom < 1.0:
            raise ShapeError(f"headroom must be >= 1.0, got {self.headroom}")
        if self.hold_s is not None and self.hold_s < self.lead_s:
            raise ShapeError(f"hold_s must be >= lead_s, got {self.hold_s} < {self.lead_s}")

    def _workers_for(self, t_s: float, window_s: float) -> int:
        rate = self.forecast.max_rate_hz(t_s, t_s + window_s)
        return max(1, math.ceil(rate * self.headroom / self.capacity_hz))

    def target_workers(self, t_s: float) -> int:
        """Workers needed for the worst forecast rate in ``[t, t+lead]``."""
        return self._workers_for(t_s, self.lead_s)

    def decide(self, signals: FleetSignals) -> ScaleAction | None:
        target = self.target_workers(signals.t_s)
        if target > signals.n_accepting:
            rate = self.forecast.max_rate_hz(signals.t_s, signals.t_s + self.lead_s)
            return ScaleAction(
                ScaleKind.UP,
                n=target - signals.n_accepting,
                reason=(
                    f"forecast peaks at {rate:.0f} req/s within "
                    f"{self.lead_s * 1e3:.1f} ms; needs {target} workers"
                ),
            )
        hold_s = self.lead_s if self.hold_s is None else self.hold_s
        hold_target = self._workers_for(signals.t_s, hold_s)
        if hold_target < signals.n_accepting:
            return ScaleAction(
                ScaleKind.DOWN,
                reason=(
                    f"forecast needs only {hold_target} workers for the next "
                    f"{hold_s * 1e3:.1f} ms"
                ),
            )
        return None


class Autoscaler:
    """Drives one policy against a live fleet — the service's scale loop.

    The service calls :meth:`next_tick_s` when merging event sources and
    :meth:`tick` when the tick fires; everything else (bounds, cooldown,
    picking which worker drains, charging startup) lives here so policies
    stay pure. The autoscaler only ever drains workers it added, newest
    first — the seed fleet is the floor, and ``max_workers`` caps the
    provisioned (accepting + draining) size.
    """

    def __init__(
        self,
        policy: AutoscalePolicy,
        device_factory: Callable[[], Device],
        interval_s: float = DEFAULT_INTERVAL_S,
        max_workers: int = 8,
        startup_s: float = 0.0,
        cooldown_s: float = 0.0,
    ):
        if interval_s <= 0:
            raise ShapeError(f"interval_s must be positive, got {interval_s}")
        if max_workers < 1:
            raise ShapeError(f"max_workers must be >= 1, got {max_workers}")
        if startup_s < 0:
            raise ShapeError(f"startup_s must be >= 0, got {startup_s}")
        if cooldown_s < 0:
            raise ShapeError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.policy = policy
        self.device_factory = device_factory
        self.interval_s = interval_s
        self.max_workers = max_workers
        self.startup_s = startup_s
        self.cooldown_s = cooldown_s
        self._next_tick_s = interval_s
        self._last_action_s = -float("inf")
        #: indices of workers this autoscaler added, in join order; drains
        #: pop from the end (LIFO — the newest capacity leaves first).
        self._added: list[int] = []
        #: optional metrics registry ("autoscale.*" counters; the service
        #: binds its own).
        self.metrics = None

    def next_tick_s(self) -> float:
        """The next evaluation instant (the fourth event source's clock)."""
        return self._next_tick_s

    def tick(self, now: float, fleet: "FleetDispatcher", signals: FleetSignals) -> list[ScaleEvent]:
        """Evaluate the policy at ``now`` and apply its action to the fleet.

        Returns the scale events applied (empty on a no-op tick). During
        ``cooldown_s`` after an applied action the policy is not consulted,
        so trend counters cannot double-fire on the same pressure episode.
        """
        self._next_tick_s = now + self.interval_s
        if now - self._last_action_s < self.cooldown_s:
            return []
        action = self.policy.decide(signals)
        if action is None:
            return []
        if action.kind is ScaleKind.UP:
            events = self._scale_up(now, fleet, action)
        else:
            events = self._scale_down(now, fleet, action)
        if events:
            self._last_action_s = now
            if self.metrics is not None:
                for event in events:
                    self.metrics.inc(f"autoscale.{event.kind}")
        return events

    # -- applying actions ----------------------------------------------------

    def _scale_up(
        self, now: float, fleet: "FleetDispatcher", action: ScaleAction
    ) -> list[ScaleEvent]:
        events: list[ScaleEvent] = []
        for _ in range(action.n):
            if len(fleet.workers) >= self.max_workers:
                break
            worker = fleet.add_worker(self.device_factory(), now=now, ready_s=now + self.startup_s)
            self._added.append(worker.index)
            events.append(self._event(now, "up", worker, fleet, action.reason))
        return events

    def _scale_down(
        self, now: float, fleet: "FleetDispatcher", action: ScaleAction
    ) -> list[ScaleEvent]:
        events: list[ScaleEvent] = []
        for _ in range(action.n):
            index = self._pop_drainable(fleet)
            if index is None:
                break
            worker = fleet.begin_drain(index, now)
            events.append(self._event(now, "down", worker, fleet, action.reason))
        return events

    def _pop_drainable(self, fleet: "FleetDispatcher") -> int | None:
        """Newest autoscaler-added worker that is still accepting."""
        while self._added:
            index = self._added[-1]
            worker = next((w for w in fleet.workers if w.index == index), None)
            if worker is not None and worker.accepting:
                return self._added.pop()
            # Already draining/retired (e.g. by a direct fleet call): the
            # stack entry is stale, discard it and keep looking.
            self._added.pop()
        return None

    @staticmethod
    def _event(
        now: float,
        kind: str,
        worker: "DeviceWorker",
        fleet: "FleetDispatcher",
        reason: str,
    ) -> ScaleEvent:
        return ScaleEvent(
            t_s=now,
            kind=kind,
            worker_index=worker.index,
            device_name=worker.device.name,
            accepting=len(fleet.accepting_workers),
            provisioned=len(fleet.workers),
            reason=reason,
        )
