"""The trace recorder: zero overhead when disabled, total recall when not.

Two recorders share one interface:

* :data:`NULL_RECORDER` — the default every component holds. Its
  ``enabled`` flag is ``False`` and :meth:`~NullRecorder.emit` is a
  one-line no-op, so an untraced run does no event construction at all:
  every emission site in the serving stack is guarded by
  ``if recorder.enabled:`` and the guarded block never executes. This is
  what keeps the golden CSVs bit-identical with tracing off — the
  instrumented code paths are behaviorally invisible.
* :class:`TraceRecorder` — appends every emitted
  :class:`~repro.serve.obs.events.SpanEvent` to an in-memory list in
  emission order. Because all timestamps are simulation-clock values and
  the simulation is seeded, the recorded event list (and everything
  derived from it: the Perfetto export, the critical-path attribution)
  is bit-deterministic: same seed, same bytes.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.serve.obs.events import SpanEvent


class NullRecorder:
    """The disabled recorder: swallows nothing because nothing is emitted.

    Emission sites guard with :attr:`enabled`, so with this recorder
    bound the serving stack never even constructs an event object.
    :meth:`emit` still exists (and discards) for callers that skip the
    guard on genuinely cold paths.
    """

    enabled: bool = False

    def emit(self, event: SpanEvent) -> None:
        """Discard one event (the disabled path)."""


#: the shared disabled recorder every component defaults to.
NULL_RECORDER = NullRecorder()


class TraceRecorder(NullRecorder):
    """Collects typed span events from one service run, in emission order.

    Pass one to :class:`~repro.serve.service.BeamformingService`
    (``recorder=``) and every lifecycle edge of the run lands here;
    export with :func:`~repro.serve.obs.perfetto.render_trace`.

    One recorder records one run: reusing it across runs concatenates
    their event streams (timestamps would interleave), so construct a
    fresh recorder per trace the way services are constructed per trace.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self.events: list[SpanEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, event: SpanEvent) -> None:
        """Record one span event."""
        self.events.append(event)

    def of_type(self, *types: type) -> Iterator[SpanEvent]:
        """Iterate recorded events of the given types, emission order."""
        for event in self.events:
            if isinstance(event, types):
                yield event

    def count(self, *types: type) -> int:
        """Number of recorded events of the given types."""
        return sum(1 for _ in self.of_type(*types))
