"""Observability for the serving tier: tracing, metrics, monitoring.

Six pieces, all deterministic and all off the hot path unless asked
for:

* :mod:`~repro.serve.obs.trace` / :mod:`~repro.serve.obs.events` — a
  :class:`TraceRecorder` of typed span events at every request-lifecycle
  edge, zero-overhead when the default :data:`NULL_RECORDER` is bound;
* :mod:`~repro.serve.obs.perfetto` — Chrome/Perfetto ``trace_event``
  JSON export (open any bench run in https://ui.perfetto.dev);
* :mod:`~repro.serve.obs.critical_path` — exact per-request latency
  decomposition and p99 blame rollup;
* :mod:`~repro.serve.obs.metrics` — the :class:`MetricsRegistry` of
  counters/gauges/histograms the whole stack publishes into;
* :mod:`~repro.serve.obs.monitor` / :mod:`~repro.serve.obs.alerts` —
  fixed-cadence :class:`TimeSeries` sampling of a live run plus SRE-style
  multi-window burn-rate alerting over per-scope SLO error budgets;
* :mod:`~repro.serve.obs.dashboard` — a self-contained, byte-deterministic
  HTML dashboard of a monitored run (``repro-bench --dashboard``).
"""

from repro.serve.obs.alerts import (
    DEFAULT_OBJECTIVE,
    DEFAULT_RULES,
    Alert,
    AlertEngine,
    BurnRateRule,
    ErrorBudget,
)
from repro.serve.obs.critical_path import (
    SEGMENTS,
    BlameReport,
    RequestPath,
    attribute,
    blame,
)
from repro.serve.obs.dashboard import render_dashboard, write_dashboard
from repro.serve.obs.events import (
    EVENT_TYPES,
    AdmissionDecided,
    AlertStateChanged,
    BatchClosed,
    BatchExecuted,
    BatcherEnqueued,
    BatchHeld,
    BatchPreempted,
    BatchQueued,
    CacheLookup,
    PlacementDecided,
    RequestArrived,
    RequestCompleted,
    ScaleApplied,
    SpanEvent,
)
from repro.serve.obs.metrics import (
    DEFAULT_LATENCY_EDGES_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.serve.obs.monitor import MetricSampler, ServiceMonitor, TimeSeries
from repro.serve.obs.perfetto import render_trace, trace_to_dict, write_trace
from repro.serve.obs.trace import NULL_RECORDER, NullRecorder, TraceRecorder

__all__ = [
    "SEGMENTS",
    "BlameReport",
    "RequestPath",
    "attribute",
    "blame",
    "DEFAULT_OBJECTIVE",
    "DEFAULT_RULES",
    "Alert",
    "AlertEngine",
    "BurnRateRule",
    "ErrorBudget",
    "render_dashboard",
    "write_dashboard",
    "EVENT_TYPES",
    "AdmissionDecided",
    "AlertStateChanged",
    "BatchClosed",
    "BatchExecuted",
    "BatcherEnqueued",
    "BatchHeld",
    "BatchPreempted",
    "BatchQueued",
    "CacheLookup",
    "PlacementDecided",
    "RequestArrived",
    "RequestCompleted",
    "ScaleApplied",
    "SpanEvent",
    "DEFAULT_LATENCY_EDGES_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricSampler",
    "ServiceMonitor",
    "TimeSeries",
    "render_trace",
    "trace_to_dict",
    "write_trace",
    "NULL_RECORDER",
    "NullRecorder",
    "TraceRecorder",
]
