"""Rolling time-series sampling of a live service run.

PR 6 left the serving stack with end-of-run snapshots: a metrics registry
you read after the fact, a trace you post-process. This module adds the
time axis — a :class:`MetricSampler` that snapshots registry gauges and
derived rates into rolling :class:`TimeSeries` at a fixed simulation-time
cadence, and a :class:`ServiceMonitor` that bundles the sampler with an
:class:`~repro.serve.obs.alerts.AlertEngine` so SLO burn-rate alerts are
evaluated on the same ticks.

The monitor is driven as an event source by
:meth:`~repro.serve.service.BeamformingService.run`, with the same
discipline the trace recorder established:

* **zero overhead when disabled** — a service without a monitor performs
  no sampling work at all (every hook is behind ``if monitor is not
  None``), so the golden CSVs and the golden trace replay bit-identically;
* **non-perturbing when enabled** — ticks are caught up *before* each
  real event's handler and only read service state (sample + alert
  evaluation + trace/metrics emission). They never dispatch, drain, or
  mutate simulation state, so a monitored run reports byte-identically to
  an unmonitored one;
* **bit-deterministic** — all timestamps are simulation-clock values and
  all arithmetic is pure, so the rendered series (and the alert sequence)
  are byte-identical for the same seed.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ShapeError
from repro.serve.obs.alerts import DEFAULT_OBJECTIVE, AlertEngine, BurnRateRule
from repro.serve.obs.metrics import MetricsRegistry
from repro.serve.obs.trace import NullRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.serve.service import BeamformingService


@dataclass
class TimeSeries:
    """One named series of ``(t_s, value)`` points, strictly time-ordered.

    ``max_points`` bounds memory for long runs: the series becomes a
    rolling window, dropping its oldest point on overflow (the dashboard
    then shows the trailing window, which is what an operator watches
    anyway).
    """

    name: str
    max_points: int | None = None
    points: list[tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.max_points is not None and self.max_points < 1:
            raise ShapeError(f"max_points must be >= 1, got {self.max_points}")

    def append(self, t_s: float, value: float) -> None:
        """Append one sample; timestamps must strictly increase."""
        if self.points and t_s <= self.points[-1][0]:
            raise ShapeError(
                f"series {self.name!r}: non-increasing timestamp {t_s} "
                f"after {self.points[-1][0]}"
            )
        self.points.append((t_s, value))
        if self.max_points is not None and len(self.points) > self.max_points:
            del self.points[0]

    def __len__(self) -> int:
        return len(self.points)

    @property
    def times(self) -> list[float]:
        return [t for t, _ in self.points]

    @property
    def values(self) -> list[float]:
        return [v for _, v in self.points]

    @property
    def latest(self) -> float:
        if not self.points:
            raise ShapeError(f"series {self.name!r} has no points")
        return self.points[-1][1]

    @property
    def minimum(self) -> float:
        if not self.points:
            raise ShapeError(f"series {self.name!r} has no points")
        return min(v for _, v in self.points)

    @property
    def maximum(self) -> float:
        if not self.points:
            raise ShapeError(f"series {self.name!r} has no points")
        return max(v for _, v in self.points)


class MetricSampler:
    """Deterministic fixed-cadence snapshots of a running service.

    Each :meth:`sample` reads the service's registries and structures
    (admission counts, queue depths, the plan cache, the execution log,
    worker rosters) and appends one point per series. Windowed values
    (rates, cache hit-rate, padded-ops fraction, per-worker busy
    fraction) are deltas over the elapsed interval, so a spike is visible
    at the tick where it happened rather than diluted into a cumulative
    average.

    Series emitted every tick:

    ``rate.arrival_hz`` / ``rate.completed_hz`` / ``rate.shed_hz``
        Offered, completed (by completion instant), and shed request
        rates over the window.
    ``queue.requests`` / ``inflight.requests``
        Requests waiting (batcher + scheduler + held) and on-device.
    ``cache.hit_rate`` / ``ops.padded_fraction``
        Windowed plan-cache hit rate and padded share of dispatched ops.
    ``fleet.accepting`` / ``fleet.provisioned``
        Worker counts (the elastic-fleet timeline).
    ``util.worker{i}``
        Per-worker busy fraction: compute-engine seconds overlapping the
        window, over the window — created when the worker first exists.
    """

    def __init__(self, interval_s: float, max_points: int | None = None):
        if interval_s <= 0:
            raise ShapeError(f"sampler interval must be positive, got {interval_s}")
        self.interval_s = interval_s
        self.max_points = max_points
        self.series: dict[str, TimeSeries] = {}
        self._ticks = 0
        self._last_s = 0.0
        #: previous cumulative values for windowed deltas.
        self._prev: dict[str, float] = {}
        #: completion instants, lazily sorted (settled early, see service).
        self._completions: list[float] = []
        self._completions_dirty = False
        self._completed_before = 0
        #: index into fleet.executions of the first unseen execution.
        self._exec_idx = 0
        #: per-worker compute intervals (start_s, end_s) not yet fully past.
        self._busy: dict[int, list[tuple[float, float]]] = {}
        #: ops dispatched since the last tick (padded fraction's window).
        self._useful_ops_new = 0.0
        self._padded_ops_new = 0.0

    @property
    def next_sample_s(self) -> float:
        """Simulation instant of the next tick (fixed cadence from 0)."""
        return (self._ticks + 1) * self.interval_s

    @property
    def n_ticks(self) -> int:
        return self._ticks

    def note_completion(self, t_s: float) -> None:
        """Record one request completion instant (may be in the future)."""
        self._completions.append(t_s)
        self._completions_dirty = True

    def _series(self, name: str) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = TimeSeries(name, max_points=self.max_points)
        return series

    def _delta(self, key: str, cumulative: float) -> float:
        delta = cumulative - self._prev.get(key, 0.0)
        self._prev[key] = cumulative
        return delta

    def _completed_by(self, t_s: float) -> int:
        if self._completions_dirty:
            self._completions.sort()
            self._completions_dirty = False
        return bisect_right(self._completions, t_s)

    def _scan_executions(self, service: BeamformingService) -> None:
        """Fold newly dispatched executions into busy/padded accounting."""
        executions = service.fleet.executions
        for execution in executions[self._exec_idx :]:
            self._useful_ops_new += execution.batch.useful_ops
            self._padded_ops_new += execution.batch.padded_ops
            parts = execution.shards if execution.is_split else [execution]
            for part in parts:
                self._busy.setdefault(part.worker_index, []).append(
                    (part.compute_start_s, part.completion_s)
                )
        self._exec_idx = len(executions)

    def _busy_fraction(self, index: int, t0: float, t1: float) -> float:
        intervals = self._busy.get(index)
        if not intervals:
            return 0.0
        busy = 0.0
        keep: list[tuple[float, float]] = []
        for start, end in intervals:
            busy += max(0.0, min(end, t1) - max(start, t0))
            if end > t1:
                keep.append((start, end))
        self._busy[index] = keep
        return busy / (t1 - t0)

    def sample(self, t_s: float, service: BeamformingService) -> None:
        """Take one snapshot at simulation time ``t_s``."""
        t0, dt = self._last_s, t_s - self._last_s
        if dt <= 0:
            raise ShapeError(f"sampler tick at {t_s} does not advance past {t0}")
        admission = service.admission
        offered = admission.n_admitted + admission.n_shed
        completed = self._completed_by(t_s)
        cache = service.fleet.cache
        self._scan_executions(service)

        point = self._series
        point("rate.arrival_hz").append(t_s, self._delta("offered", offered) / dt)
        point("rate.completed_hz").append(t_s, self._delta("completed", completed) / dt)
        point("rate.shed_hz").append(t_s, self._delta("shed", admission.n_shed) / dt)
        point("queue.requests").append(t_s, service.queued_requests())
        point("inflight.requests").append(
            t_s, sum(n for completion, n in service.in_flight if completion > t_s)
        )
        hits = self._delta("cache.hits", cache.hits)
        misses = self._delta("cache.misses", cache.misses)
        lookups = hits + misses
        point("cache.hit_rate").append(t_s, hits / lookups if lookups else 0.0)
        total_ops = self._useful_ops_new + self._padded_ops_new
        point("ops.padded_fraction").append(
            t_s, self._padded_ops_new / total_ops if total_ops else 0.0
        )
        self._useful_ops_new = self._padded_ops_new = 0.0
        point("fleet.accepting").append(t_s, len(service.fleet.accepting_workers))
        point("fleet.provisioned").append(t_s, len(service.fleet.workers))
        for worker in service.fleet.all_workers:
            point(f"util.worker{worker.index}").append(
                t_s, self._busy_fraction(worker.index, t0, t_s)
            )
        self._ticks += 1
        self._last_s = t_s

    def render(self) -> str:
        """Canonical text form of every series — the byte-determinism bar.

        One line per series, sorted by name, fixed ``%.9e`` formatting:
        two runs of the same seed must render the same bytes.
        """
        lines = []
        for name in sorted(self.series):
            points = " ".join(
                f"{t:.9e}:{v:.9e}" for t, v in self.series[name].points
            )
            lines.append(f"{name} {points}".rstrip())
        return "\n".join(lines) + "\n" if lines else ""


class ServiceMonitor:
    """Sampler + alert engine, driven by the service event loop.

    Pass one to :class:`~repro.serve.service.BeamformingService`
    (``monitor=``): the run loop catches the monitor up to every event
    instant (all pending ticks ``<= now`` fire, oldest first, *before*
    the event's handler), and feeds it each shed and completion verdict
    for the alert engine's error budgets. One monitor monitors one run.
    """

    def __init__(
        self,
        interval_s: float,
        rules: tuple[BurnRateRule, ...] | None = None,
        objective: float = DEFAULT_OBJECTIVE,
        max_points: int | None = None,
    ):
        self.sampler = MetricSampler(interval_s, max_points=max_points)
        self.engine = AlertEngine(rules=rules, objective=objective)
        self._deadline_s: float | None = None

    def bind(
        self,
        recorder: NullRecorder,
        metrics: MetricsRegistry | None,
        deadline_s: float | None,
    ) -> None:
        """Attach the run's recorder/metrics and the goodness deadline."""
        self.engine.bind(recorder, metrics)
        self._deadline_s = deadline_s

    @property
    def interval_s(self) -> float:
        return self.sampler.interval_s

    @property
    def series(self) -> dict[str, TimeSeries]:
        return self.sampler.series

    def next_sample_s(self) -> float:
        return self.sampler.next_sample_s

    def advance(self, now: float, service: BeamformingService) -> None:
        """Catch up every pending tick ``<= now``, oldest first."""
        while self.sampler.next_sample_s <= now:
            t_tick = self.sampler.next_sample_s
            self.sampler.sample(t_tick, service)
            self.engine.evaluate(t_tick)

    @staticmethod
    def _scopes(priority: int, tenant: str) -> tuple[str, str, str]:
        return ("service", f"priority={priority}", f"tenant={tenant}")

    def observe_shed(self, t_s: float, priority: int, tenant: str) -> None:
        """One request shed at the door: always budget-bad."""
        self.engine.observe(t_s, self._scopes(priority, tenant), good=False)

    def observe_completion(
        self, t_s: float, priority: int, tenant: str, latency_s: float
    ) -> None:
        """One request completed; good iff it made the goodness deadline."""
        good = self._deadline_s is None or latency_s <= self._deadline_s
        self.engine.observe(t_s, self._scopes(priority, tenant), good=good)
        self.sampler.note_completion(t_s)

    def observe_failure(self, t_s: float, priority: int, tenant: str) -> None:
        """One admitted request lost (crash, retries exhausted): budget-bad.

        Failures burn the error budget exactly like sheds, so a crash
        storm drives the same burn-rate alerts an overload does.
        """
        self.engine.observe(t_s, self._scopes(priority, tenant), good=False)

    @property
    def alerts(self) -> list:
        """Every alert the engine ever raised, creation order."""
        return self.engine.history

    def render_series(self) -> str:
        """Canonical byte-deterministic text form of all series."""
        return self.sampler.render()
