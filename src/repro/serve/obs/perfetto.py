"""Chrome/Perfetto ``trace_event`` JSON export of a recorded run.

:func:`render_trace` turns a :class:`~repro.serve.obs.trace.TraceRecorder`
into the JSON the Perfetto UI (https://ui.perfetto.dev) and legacy
``chrome://tracing`` load directly:

* one process per concern — workers, tenants, service control plane;
* two threads (tracks) per worker: the copy engine (plan-build and
  stage-in slices) and the compute engine (GEMM slices), so engine
  overlap is visible as parallel slices on one worker;
* one track per tenant carrying an async span per request from arrival
  to completion (or to its shed verdict), with flow arrows linking each
  request's span to the
  GEMM slice that served it (across merges and splits: a split's
  requests fan out to every shard's worker);
* for multi-stage pipeline requests, one nested async span per stage
  (category ``stage``) on the same tenant track — released to completed —
  plus stage->stage flow arrows tracing every dependency edge of the DAG
  from the producing stage's completion to the consuming stage's release;
* instant events on the control-plane track for placement verdicts,
  admission decisions, batcher flushes, preemptions, holds, plan-cache
  lookups, and autoscale actions;
* counter tracks for scheduler queue depth, per-worker compute busyness,
  and fleet size.

Timestamps are simulation-clock microseconds (the ``trace_event`` unit).
The export is bit-deterministic: events sort by ``(timestamp,
emission order)`` and the JSON renders with sorted keys and fixed
separators, so the same seed produces byte-identical files — which is
what lets a golden trace be checked in and diffed like a golden CSV.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.serve.obs.events import (
    AdmissionDecided,
    AlertStateChanged,
    BatchClosed,
    BatchExecuted,
    BatcherEnqueued,
    BatchHeld,
    BatchPreempted,
    BatchQueued,
    CacheLookup,
    HedgeLaunched,
    HedgeResolved,
    PlacementDecided,
    RequestArrived,
    RequestCompleted,
    RequestFailed,
    RequestRetried,
    ScaleApplied,
    ShardRecovered,
    StageCompleted,
    StageStarted,
    WorkerCrashed,
    WorkerSlowed,
)
from repro.serve.obs.trace import TraceRecorder

#: process ids for the three top-level Perfetto tracks.
PID_WORKERS = 1
PID_TENANTS = 2
PID_SERVICE = 3

_US = 1e6  # seconds -> trace_event microseconds


def _copy_tid(worker_index: int) -> int:
    return worker_index * 2


def _compute_tid(worker_index: int) -> int:
    return worker_index * 2 + 1


def trace_to_dict(recorder: TraceRecorder) -> dict:
    """Build the ``trace_event`` document for one recorded run.

    Pure function of the recorder's event list; see the module docstring
    for the track layout.
    """
    # Discover tracks from the events themselves.
    workers: dict[int, str] = {}
    tenants: list[str] = []
    for event in recorder.events:
        if isinstance(event, (BatchExecuted, ScaleApplied)) and event.worker_index >= 0:
            workers.setdefault(event.worker_index, event.device)
        if isinstance(event, RequestArrived) and event.tenant not in tenants:
            tenants.append(event.tenant)
    tenants.sort()
    tenant_tid = {tenant: tid for tid, tenant in enumerate(tenants)}

    out: list[dict] = []
    for pid, name in (
        (PID_WORKERS, "workers"),
        (PID_TENANTS, "tenants"),
        (PID_SERVICE, "service"),
    ):
        out.append(
            {"ph": "M", "pid": pid, "tid": 0, "ts": 0, "name": "process_name",
             "args": {"name": name}}
        )
    for index in sorted(workers):
        device = workers[index]
        for tid, engine in (
            (_copy_tid(index), "copy"),
            (_compute_tid(index), "compute"),
        ):
            out.append(
                {"ph": "M", "pid": PID_WORKERS, "tid": tid, "ts": 0, "name": "thread_name",
                 "args": {"name": f"worker{index}/{device} {engine}"}}
            )
    for tenant, tid in tenant_tid.items():
        out.append(
            {"ph": "M", "pid": PID_TENANTS, "tid": tid, "ts": 0, "name": "thread_name",
             "args": {"name": f"tenant {tenant}"}}
        )
    out.append(
        {"ph": "M", "pid": PID_SERVICE, "tid": 0, "ts": 0, "name": "thread_name",
         "args": {"name": "control plane"}}
    )

    timed: list[dict] = []
    queue_depth = 0
    started_bids: set[int] = set()
    request_tenant: dict[int, str] = {}
    # rid -> open stage spans (stage name, topo index), so a request that
    # fails mid-pipeline still balances every stage "b" with an "e".
    open_stages: dict[int, list[tuple[str, int]]] = {}

    def instant(event, name: str, args: dict) -> None:
        timed.append(
            {"ph": "i", "pid": PID_SERVICE, "tid": 0, "ts": event.t_s * _US,
             "s": "t", "name": name, "cat": "service", "args": args}
        )

    for event in recorder.events:
        if isinstance(event, RequestArrived):
            request_tenant[event.rid] = event.tenant
            tid = tenant_tid[event.tenant]
            timed.append(
                {"ph": "b", "pid": PID_TENANTS, "tid": tid, "ts": event.t_s * _US,
                 "cat": "request", "id": event.rid, "name": "request",
                 "args": {"rid": event.rid, "workload": event.workload,
                          "priority": event.priority}}
            )
            timed.append(
                {"ph": "s", "pid": PID_TENANTS, "tid": tid, "ts": event.t_s * _US,
                 "cat": "request", "id": event.rid, "name": "serve"}
            )
        elif isinstance(event, RequestCompleted):
            tid = tenant_tid.get(event.tenant, 0)
            timed.append(
                {"ph": "e", "pid": PID_TENANTS, "tid": tid, "ts": event.t_s * _US,
                 "cat": "request", "id": event.rid, "name": "request",
                 "args": {"bid": event.bid, "latency_ms": event.latency_s * 1e3}}
            )
        elif isinstance(event, PlacementDecided):
            instant(event, "placement",
                    {"rid": event.rid, "kind": event.kind, "workload": event.workload,
                     "chosen_s": event.chosen_s, "costs": list(event.costs),
                     "shed_reason": event.shed_reason})
        elif isinstance(event, AdmissionDecided):
            instant(event, "admission",
                    {"rid": event.rid, "admitted": event.admitted,
                     "projected_s": event.projected_s, "queue_depth": event.queue_depth,
                     "reason": event.reason})
            if not event.admitted:
                # A shed request never reaches RequestCompleted; close its
                # async span here so every "b" has a balancing "e".
                tid = tenant_tid.get(request_tenant.get(event.rid, ""), 0)
                timed.append(
                    {"ph": "e", "pid": PID_TENANTS, "tid": tid, "ts": event.t_s * _US,
                     "cat": "request", "id": event.rid, "name": "request",
                     "args": {"shed": True, "reason": event.reason}}
                )
        elif isinstance(event, BatcherEnqueued):
            instant(event, "batcher_enqueue",
                    {"rid": event.rid, "workload": event.workload,
                     "group_seq": event.group_seq, "n_waiting": event.n_waiting})
        elif isinstance(event, BatchClosed):
            instant(event, "batch_closed",
                    {"bid": event.bid, "cause": event.cause, "workload": event.workload,
                     "priority": event.priority, "rids": list(event.rids)})
        elif isinstance(event, BatchQueued):
            queue_depth += 1
            instant(event, "batch_queued",
                    {"bid": event.bid, "priority": event.priority,
                     "n_requests": event.n_requests})
            timed.append(
                {"ph": "C", "pid": PID_SERVICE, "tid": 0, "ts": event.t_s * _US,
                 "name": "queue_depth", "args": {"batches": queue_depth}}
            )
        elif isinstance(event, BatchPreempted):
            instant(event, "preempted",
                    {"bid": event.bid, "by_bid": event.by_bid,
                     "priority": event.priority, "by_priority": event.by_priority})
        elif isinstance(event, BatchHeld):
            instant(event, "held",
                    {"bid": event.bid, "priority": event.priority,
                     "candidates": list(event.candidates)})
        elif isinstance(event, CacheLookup):
            instant(event, "plan_cache",
                    {"device": event.device, "worker": event.worker_index,
                     "workload": event.workload, "n_requests": event.n_requests,
                     "hit": event.hit, "build_ms": event.build_s * 1e3})
        elif isinstance(event, ScaleApplied):
            instant(event, "autoscale",
                    {"kind": event.kind, "worker": event.worker_index,
                     "device": event.device, "accepting": event.accepting,
                     "provisioned": event.provisioned, "reason": event.reason})
            timed.append(
                {"ph": "C", "pid": PID_SERVICE, "tid": 0, "ts": event.t_s * _US,
                 "name": "fleet", "args": {"accepting": event.accepting,
                                           "provisioned": event.provisioned}}
            )
        elif isinstance(event, AlertStateChanged):
            instant(event, "alert",
                    {"id": event.alert_id, "scope": event.scope, "rule": event.rule,
                     "state": event.state, "burn_fast": event.burn_fast,
                     "burn_slow": event.burn_slow})
        elif isinstance(event, WorkerCrashed):
            instant(event, "crash",
                    {"worker": event.worker_index, "device": event.device,
                     "lost_batches": event.lost_batches,
                     "lost_requests": event.lost_requests})
        elif isinstance(event, WorkerSlowed):
            instant(event, "slow",
                    {"worker": event.worker_index, "device": event.device,
                     "factor": event.factor})
        elif isinstance(event, RequestRetried):
            instant(event, "retry",
                    {"rid": event.rid, "attempt": event.attempt,
                     "budget": event.budget, "priority": event.priority,
                     "tenant": event.tenant})
        elif isinstance(event, RequestFailed):
            instant(event, "request_failed",
                    {"rid": event.rid, "reason": event.reason,
                     "priority": event.priority, "tenant": event.tenant})
            # A failed request never reaches RequestCompleted; close its
            # async span here so every "b" has a balancing "e".
            tid = tenant_tid.get(event.tenant, 0)
            for stage, stage_index in open_stages.pop(event.rid, []):
                timed.append(
                    {"ph": "e", "pid": PID_TENANTS, "tid": tid,
                     "ts": event.t_s * _US, "cat": "stage", "id": event.rid,
                     "name": stage,
                     "args": {"failed": True, "stage_index": stage_index}}
                )
            timed.append(
                {"ph": "e", "pid": PID_TENANTS, "tid": tid, "ts": event.t_s * _US,
                 "cat": "request", "id": event.rid, "name": "request",
                 "args": {"failed": True, "reason": event.reason}}
            )
        elif isinstance(event, HedgeLaunched):
            instant(event, "hedge_launched",
                    {"bid": event.bid, "primary": event.primary_index,
                     "hedge": event.hedge_index,
                     "primary_completion_ms": event.primary_completion_s * 1e3,
                     "hedge_completion_ms": event.hedge_completion_s * 1e3})
        elif isinstance(event, HedgeResolved):
            instant(event, "hedge_resolved",
                    {"bid": event.bid, "winner": event.winner,
                     "wasted_ms": event.wasted_s * 1e3})
        elif isinstance(event, ShardRecovered):
            instant(event, "shard_recovered",
                    {"bid": event.bid, "shard": event.shard_index,
                     "from": event.from_index, "to": event.to_index,
                     "completion_ms": event.completion_s * 1e3})
        elif isinstance(event, StageStarted):
            tid = tenant_tid.get(request_tenant.get(event.rid, ""), 0)
            open_stages.setdefault(event.rid, []).append(
                (event.stage, event.stage_index)
            )
            timed.append(
                {"ph": "b", "pid": PID_TENANTS, "tid": tid, "ts": event.t_s * _US,
                 "cat": "stage", "id": event.rid, "name": event.stage,
                 "args": {"rid": event.rid, "pipeline": event.pipeline,
                          "stage_index": event.stage_index,
                          "dep_indices": list(event.dep_indices)}}
            )
            # One flow-arrow finish per dependency edge: the matching "s"
            # was emitted at the producing stage's completion.
            for dep_index in event.dep_indices:
                timed.append(
                    {"ph": "f", "pid": PID_TENANTS, "tid": tid,
                     "ts": event.t_s * _US, "cat": "stage",
                     "id": event.rid * 4096 + dep_index,
                     "name": "stage_dep", "bp": "e"}
                )
        elif isinstance(event, StageCompleted):
            tid = tenant_tid.get(request_tenant.get(event.rid, ""), 0)
            spans = open_stages.get(event.rid, [])
            if (event.stage, event.stage_index) in spans:
                spans.remove((event.stage, event.stage_index))
            timed.append(
                {"ph": "e", "pid": PID_TENANTS, "tid": tid, "ts": event.t_s * _US,
                 "cat": "stage", "id": event.rid, "name": event.stage,
                 "args": {"bid": event.bid, "stage_index": event.stage_index}}
            )
            # Flow-arrow start for every outgoing dependency edge; consumers
            # close it with a "f"/"bp e" at their StageStarted. Sinks leave
            # an unterminated flow, which Perfetto renders as no arrow.
            timed.append(
                {"ph": "s", "pid": PID_TENANTS, "tid": tid, "ts": event.t_s * _US,
                 "cat": "stage", "id": event.rid * 4096 + event.stage_index,
                 "name": "stage_dep"}
            )
        elif isinstance(event, BatchExecuted):
            if event.bid not in started_bids:
                started_bids.add(event.bid)
                queue_depth -= 1
                timed.append(
                    {"ph": "C", "pid": PID_SERVICE, "tid": 0, "ts": event.start_s * _US,
                     "name": "queue_depth", "args": {"batches": queue_depth}}
                )
            slice_args = {"bid": event.bid, "workload": event.workload,
                          "priority": event.priority, "tenant": event.tenant,
                          "n_requests": event.n_requests, "rids": list(event.rids),
                          "shard_index": event.shard_index}
            copy_tid = _copy_tid(event.worker_index)
            compute_tid = _compute_tid(event.worker_index)
            if event.build_s > 0:
                timed.append(
                    {"ph": "X", "pid": PID_WORKERS, "tid": copy_tid,
                     "ts": event.start_s * _US, "dur": event.build_s * _US,
                     "cat": "copy", "name": "plan_build", "args": slice_args}
                )
            timed.append(
                {"ph": "X", "pid": PID_WORKERS, "tid": copy_tid,
                 "ts": (event.start_s + event.build_s) * _US,
                 "dur": event.stage_in_s * _US,
                 "cat": "copy", "name": "stage_in", "args": slice_args}
            )
            timed.append(
                {"ph": "X", "pid": PID_WORKERS, "tid": compute_tid,
                 "ts": event.compute_start_s * _US,
                 "dur": (event.completion_s - event.compute_start_s) * _US,
                 "cat": "compute", "name": "gemm", "args": slice_args}
            )
            for rid in event.rids:
                timed.append(
                    {"ph": "f", "pid": PID_WORKERS, "tid": compute_tid,
                     "ts": event.compute_start_s * _US, "cat": "request",
                     "id": rid, "name": "serve", "bp": "e"}
                )
            timed.append(
                {"ph": "C", "pid": PID_SERVICE, "tid": 0,
                 "ts": event.compute_start_s * _US,
                 "name": f"worker{event.worker_index}_busy", "args": {"compute": 1}}
            )
            timed.append(
                {"ph": "C", "pid": PID_SERVICE, "tid": 0,
                 "ts": event.completion_s * _US,
                 "name": f"worker{event.worker_index}_busy", "args": {"compute": 0}}
            )

    timed.sort(key=lambda e: e["ts"])  # stable: emission order breaks ties
    out.extend(timed)
    return {"displayTimeUnit": "ms", "traceEvents": out}


def render_trace(recorder: TraceRecorder) -> str:
    """The byte-deterministic JSON text of :func:`trace_to_dict`."""
    return json.dumps(trace_to_dict(recorder), sort_keys=True, separators=(",", ":"))


def write_trace(recorder: TraceRecorder, path: str | Path) -> Path:
    """Write the Perfetto JSON to ``path`` (trailing newline included)."""
    path = Path(path)
    path.write_text(render_trace(recorder) + "\n")
    return path
