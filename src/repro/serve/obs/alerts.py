"""SLO error budgets and multi-window burn-rate alerting.

The monitoring layer's judgement half: where :mod:`~repro.serve.obs.monitor`
records what the service *did*, this module decides whether that was *good
enough* — SRE-style, on error budgets.

An :class:`ErrorBudget` accumulates per-scope request verdicts (a request
is *good* when it was served within its admission deadline, *bad* when it
was shed or completed late) and answers windowed error-rate queries. A
:class:`BurnRateRule` turns those into the classic multi-window condition:
alert when the *burn rate* — the windowed error rate divided by the budget
the objective leaves (``1 - objective``) — exceeds a threshold over **both**
a fast window (catches the spike quickly, resets quickly once the bleeding
stops) and a slow window (suppresses one-sample blips). The
:class:`AlertEngine` evaluates every rule against every scope at each
monitor tick and drives a pending → firing → resolved lifecycle whose
transitions land as trace instants and metrics counters.

Everything here runs on the simulation clock with pure-deterministic
arithmetic, so the alert sequence is bit-identical for the same seed.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import ShapeError
from repro.serve.obs.events import AlertStateChanged
from repro.serve.obs.metrics import MetricsRegistry
from repro.serve.obs.trace import NULL_RECORDER, NullRecorder

#: default availability objective: 99.9% of offered requests in-deadline.
DEFAULT_OBJECTIVE = 0.999


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alerting rule.

    Fires when the burn rate meets ``threshold`` over *both* windows: the
    fast window makes the alert react (and later resolve) quickly, the
    slow window keeps one bad sample from paging. ``pending_s`` is the
    hold-down between the condition first holding and the alert firing
    (0 fires on the same tick, after passing through ``pending``).

    Thresholds follow the SRE workbook shape: with objective 99.9%, a
    threshold of 14.4 fires when ~1.44% of a window's requests are bad.
    """

    name: str
    threshold: float
    fast_window_s: float
    slow_window_s: float
    pending_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ShapeError("BurnRateRule needs a non-empty name")
        if self.threshold <= 0:
            raise ShapeError(f"threshold must be positive, got {self.threshold}")
        if self.fast_window_s <= 0 or self.slow_window_s <= 0:
            raise ShapeError("burn-rate windows must be positive")
        if self.fast_window_s > self.slow_window_s:
            raise ShapeError(
                f"fast window ({self.fast_window_s}s) must not exceed "
                f"slow window ({self.slow_window_s}s)"
            )
        if self.pending_s < 0:
            raise ShapeError(f"pending_s must be non-negative, got {self.pending_s}")

    def to_dict(self) -> dict:
        """JSON-ready form for bench reports."""
        return {
            "name": self.name,
            "threshold": self.threshold,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "pending_s": self.pending_s,
        }


#: simulation-scaled defaults (milliseconds stand in for the workbook's
#: hours): a page-grade fast rule and a ticket-grade slow rule.
DEFAULT_RULES: tuple[BurnRateRule, ...] = (
    BurnRateRule("fast-burn", threshold=14.4, fast_window_s=0.5e-3, slow_window_s=2e-3),
    BurnRateRule("slow-burn", threshold=6.0, fast_window_s=2e-3, slow_window_s=8e-3),
)


class ErrorBudget:
    """Windowed good/bad accounting for one scope (service, class, tenant).

    Events arrive out of time order (completions are settled at dispatch,
    with completion instants in the future), so the budget keeps them
    lazily sorted: appends are O(1) and the first query after a batch of
    appends pays one near-sorted timsort. All queries treat the window as
    the half-open interval ``(now - window_s, now]`` — events stamped in
    the future (recorded early) never leak into the present.
    """

    def __init__(self, scope: str, objective: float = DEFAULT_OBJECTIVE):
        if not 0.0 < objective < 1.0:
            raise ShapeError(f"objective must be in (0, 1), got {objective}")
        self.scope = scope
        self.objective = objective
        self._events: list[tuple[float, int]] = []  # (t_s, 1 if bad else 0)
        self._dirty = False
        self._times: list[float] = []
        self._bad_prefix: list[int] = [0]

    def record(self, t_s: float, good: bool) -> None:
        """Record one request verdict at simulation time ``t_s``."""
        self._events.append((t_s, 0 if good else 1))
        self._dirty = True

    @property
    def n_events(self) -> int:
        return len(self._events)

    @property
    def n_bad(self) -> int:
        return sum(bad for _, bad in self._events)

    def _ensure_sorted(self) -> None:
        if not self._dirty:
            return
        self._events.sort(key=lambda e: e[0])
        self._times = [t for t, _ in self._events]
        prefix = [0]
        for _, bad in self._events:
            prefix.append(prefix[-1] + bad)
        self._bad_prefix = prefix
        self._dirty = False

    def window_counts(self, window_s: float, now: float) -> tuple[int, int]:
        """``(n_events, n_bad)`` in the window ``(now - window_s, now]``."""
        if window_s <= 0:
            raise ShapeError(f"window_s must be positive, got {window_s}")
        self._ensure_sorted()
        lo = bisect_right(self._times, now - window_s)
        hi = bisect_right(self._times, now)
        return hi - lo, self._bad_prefix[hi] - self._bad_prefix[lo]

    def error_rate(self, window_s: float, now: float) -> float:
        """Fraction of windowed events that were bad (0 with no events)."""
        n, bad = self.window_counts(window_s, now)
        return bad / n if n else 0.0

    def burn_rate(self, window_s: float, now: float) -> float:
        """Windowed error rate over the budget the objective leaves."""
        return self.error_rate(window_s, now) / (1.0 - self.objective)


@dataclass
class Alert:
    """One alert instance: a rule breaching on a scope, birth to death.

    The lifecycle is ``pending`` → ``firing`` → ``resolved``; a pending
    alert whose condition clears before the hold-down elapses ends
    ``cancelled`` instead (it never paged). ``peak_burn`` is the highest
    fast-window burn rate observed across the alert's lifetime.
    """

    aid: str
    scope: str
    rule: str
    pending_s: float
    firing_s: float | None = None
    resolved_s: float | None = None
    cancelled_s: float | None = None
    peak_burn: float = 0.0

    @property
    def state(self) -> str:
        if self.cancelled_s is not None:
            return "cancelled"
        if self.resolved_s is not None:
            return "resolved"
        if self.firing_s is not None:
            return "firing"
        return "pending"

    def to_dict(self) -> dict:
        """JSON-ready form for bench reports and the dashboard."""
        return {
            "id": self.aid,
            "scope": self.scope,
            "rule": self.rule,
            "state": self.state,
            "pending_s": self.pending_s,
            "firing_s": self.firing_s,
            "resolved_s": self.resolved_s,
            "cancelled_s": self.cancelled_s,
            "peak_burn": self.peak_burn,
        }


@dataclass
class _ActiveKey:
    """Internal: per-(scope, rule) alert sequencing."""

    seq: int = 0
    alert: Alert | None = None


class AlertEngine:
    """Evaluates burn-rate rules over per-scope error budgets.

    The service monitor feeds every request verdict through
    :meth:`observe` (which fans it out to the ``service``, ``priority=N``
    and ``tenant=X`` scopes) and calls :meth:`evaluate` at each sampler
    tick. Evaluation order is deterministic — sorted scopes, rule
    declaration order — so the alert history is bit-identical for the
    same seed. Transitions are emitted as
    :class:`~repro.serve.obs.events.AlertStateChanged` trace instants
    (when a recorder is bound) and counted as ``alerts.{state}`` metrics.
    """

    def __init__(
        self,
        rules: tuple[BurnRateRule, ...] | None = None,
        objective: float = DEFAULT_OBJECTIVE,
    ):
        self.rules = tuple(rules) if rules is not None else DEFAULT_RULES
        if not self.rules:
            raise ShapeError("AlertEngine needs at least one BurnRateRule")
        if len({rule.name for rule in self.rules}) != len(self.rules):
            raise ShapeError("BurnRateRule names must be unique")
        self.objective = objective
        self.recorder: NullRecorder = NULL_RECORDER
        self.metrics: MetricsRegistry | None = None
        self._budgets: dict[str, ErrorBudget] = {}
        self._slots: dict[tuple[str, str], _ActiveKey] = {}
        #: every alert ever created, in creation order.
        self.history: list[Alert] = []

    def bind(self, recorder: NullRecorder, metrics: MetricsRegistry | None) -> None:
        """Attach the run's trace recorder and metrics registry."""
        self.recorder = recorder
        self.metrics = metrics

    def budget(self, scope: str) -> ErrorBudget:
        """The scope's budget, created on first sight."""
        budget = self._budgets.get(scope)
        if budget is None:
            budget = self._budgets[scope] = ErrorBudget(scope, self.objective)
        return budget

    @property
    def scopes(self) -> list[str]:
        return sorted(self._budgets)

    def observe(self, t_s: float, scopes: tuple[str, ...], good: bool) -> None:
        """Record one request verdict into every scope it belongs to."""
        for scope in scopes:
            self.budget(scope).record(t_s, good)

    # -- lifecycle -----------------------------------------------------------

    def evaluate(self, now: float) -> None:
        """Advance every (scope, rule) alert state machine to ``now``."""
        for scope in sorted(self._budgets):
            budget = self._budgets[scope]
            for rule in self.rules:
                fast = budget.burn_rate(rule.fast_window_s, now)
                slow = budget.burn_rate(rule.slow_window_s, now)
                breach = fast >= rule.threshold and slow >= rule.threshold
                self._step(scope, rule, now, fast, slow, breach)

    def _step(
        self,
        scope: str,
        rule: BurnRateRule,
        now: float,
        fast: float,
        slow: float,
        breach: bool,
    ) -> None:
        key = (scope, rule.name)
        slot = self._slots.get(key)
        if slot is None:
            slot = self._slots[key] = _ActiveKey()
        alert = slot.alert
        if alert is None:
            if not breach:
                return
            slot.seq += 1
            alert = Alert(
                aid=f"{scope}/{rule.name}#{slot.seq}",
                scope=scope,
                rule=rule.name,
                pending_s=now,
                peak_burn=fast,
            )
            slot.alert = alert
            self.history.append(alert)
            self._transition(alert, "pending", now, fast, slow)
            if rule.pending_s == 0.0:
                alert.firing_s = now
                self._transition(alert, "firing", now, fast, slow)
            return
        alert.peak_burn = max(alert.peak_burn, fast)
        if alert.firing_s is None:
            if not breach:
                alert.cancelled_s = now
                slot.alert = None
                self._transition(alert, "cancelled", now, fast, slow)
            elif now - alert.pending_s >= rule.pending_s:
                alert.firing_s = now
                self._transition(alert, "firing", now, fast, slow)
        elif not breach:
            alert.resolved_s = now
            slot.alert = None
            self._transition(alert, "resolved", now, fast, slow)

    def _transition(
        self, alert: Alert, state: str, now: float, fast: float, slow: float
    ) -> None:
        if self.metrics is not None:
            self.metrics.inc(f"alerts.{state}")
        if self.recorder.enabled:
            self.recorder.emit(
                AlertStateChanged(
                    t_s=now,
                    alert_id=alert.aid,
                    scope=alert.scope,
                    rule=alert.rule,
                    state=state,
                    burn_fast=fast,
                    burn_slow=slow,
                )
            )

    # -- reporting -----------------------------------------------------------

    def count(self, state: str) -> int:
        """Alerts that ever reached ``state`` (firing counts resolved too)."""
        if state == "firing":
            return sum(1 for a in self.history if a.firing_s is not None)
        return sum(1 for a in self.history if a.state == state)

    def snapshot(self) -> dict:
        """JSON-ready summary: objective, rules, full alert history."""
        return {
            "objective": self.objective,
            "rules": [rule.to_dict() for rule in self.rules],
            "history": [alert.to_dict() for alert in self.history],
            "fired": self.count("firing"),
            "resolved": self.count("resolved"),
            "cancelled": self.count("cancelled"),
        }
