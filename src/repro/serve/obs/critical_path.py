"""Critical-path latency attribution: where did each microsecond go?

Every completed request's latency is decomposed into six segments that
partition the interval from arrival to completion exactly:

* ``wait_for_batch`` — arrival to batch flush: time spent forming the
  micro-batch (the price of coalescing, bounded by ``max_wait_s``);
* ``preempted_by`` — the part of the post-flush wait during which the
  serving worker was computing *later-formed, more urgent* batches: the
  measurable cost of non-destructive preemption to the preempted;
* ``queued_behind`` — the rest of the wait for the worker: earlier work
  draining ahead (same or more urgent), plus the in-flight GEMM the
  stage-in could not overlap;
* ``cold_build`` — the one-time plan build charged to this batch (plan
  cache miss only);
* ``stage_in`` — the copy-engine transpose + packing kernels;
* ``compute`` — the GEMM itself.

The segments are closed *telescopically*: each is a difference of
adjacent timeline boundaries and the final ``compute`` segment is the
residual against the recorded latency, so the six values sum **exactly**
(bit-for-bit, not approximately) to ``completion_s - arrival_s`` — the
invariant the test suite asserts for every traced request. For a split
placement the decomposition follows the *critical shard* (the slowest
one — the only shard on the request's critical path).

Multi-stage pipeline requests attribute **end-to-end**: the outcome's
gating chain (:attr:`RequestOutcome.stage_chain
<repro.serve.service.RequestOutcome.stage_chain>`) names, per stage, the
launch that gated the next release; each link's five leading segments are
computed against the link's own release instant and summed across the
chain, and ``compute`` closes the end-to-end latency as the residual — the
same bit-exact-sum invariant, now spanning stages (consecutive links
telescope: a link's release *is* the previous link's completion).

:func:`blame` rolls per-request paths up into the tail story a service
report needs: over the requests at or beyond the p99 latency, the mean
seconds (and share) each segment contributed — "p99 blame".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ShapeError
from repro.serve.slo import percentile

if TYPE_CHECKING:
    from repro.serve.dispatch import BatchExecution
    from repro.serve.service import RequestOutcome

#: segment names, in timeline order (the order blame tables report).
SEGMENTS = (
    "wait_for_batch",
    "queued_behind",
    "preempted_by",
    "cold_build",
    "stage_in",
    "compute",
)


@dataclass(frozen=True)
class RequestPath:
    """One completed request's latency, decomposed along its critical path.

    The six segment fields partition ``latency_s`` exactly (see the
    module docstring for each segment's meaning); ``worker_index`` is the
    worker on the request's critical path (the critical shard's worker
    for splits).
    """

    rid: int
    bid: int
    priority: int
    tenant: str
    worker_index: int
    latency_s: float
    wait_for_batch_s: float
    queued_behind_s: float
    preempted_by_s: float
    cold_build_s: float
    stage_in_s: float
    compute_s: float

    def segments(self) -> dict[str, float]:
        """Segment name -> seconds, in timeline order."""
        return {
            "wait_for_batch": self.wait_for_batch_s,
            "queued_behind": self.queued_behind_s,
            "preempted_by": self.preempted_by_s,
            "cold_build": self.cold_build_s,
            "stage_in": self.stage_in_s,
            "compute": self.compute_s,
        }

    @property
    def total_s(self) -> float:
        """Sum of the segments — equals ``latency_s`` exactly."""
        return (
            self.wait_for_batch_s
            + self.queued_behind_s
            + self.preempted_by_s
            + self.cold_build_s
            + self.stage_in_s
            + self.compute_s
        )


@dataclass(frozen=True)
class BlameReport:
    """The tail cohort's latency, attributed per segment.

    ``seconds[name]`` is the mean seconds segment ``name`` contributed
    per tail request; ``shares[name]`` its fraction of the cohort's total
    latency. ``threshold_s`` is the ``q``-th percentile latency that
    defines the cohort (requests at or beyond it).
    """

    q: float
    threshold_s: float
    n_requests: int
    seconds: dict[str, float]
    shares: dict[str, float]

    def summary(self) -> str:
        """One line: the tail's blame, largest segment first."""
        ranked = sorted(self.shares.items(), key=lambda kv: (-kv[1], SEGMENTS.index(kv[0])))
        parts = [f"{name} {share:.1%}" for name, share in ranked if share > 0]
        return (
            f"p{self.q:g} blame (n={self.n_requests}, "
            f">= {self.threshold_s * 1e3:.3f} ms): " + ", ".join(parts)
        )


def _critical_part(execution: "BatchExecution") -> "BatchExecution":
    """The execution on the request's critical path (the slowest shard)."""
    if not execution.is_split:
        return execution
    return max(execution.shards, key=lambda s: (s.completion_s, -s.worker_index))


def _preempted_overlap(
    window_start: float,
    window_end: float,
    priority: int,
    formed_s: float,
    compute_spans: list[tuple[float, float, int, float]],
) -> float:
    """Seconds of ``[window_start, window_end)`` spent under preemptors.

    ``compute_spans`` are one worker's compute-engine busy intervals
    ``(compute_start_s, completion_s, priority, formed_s)``. A span
    preempts when it is strictly more urgent *and* formed strictly later
    than the waiting batch — earlier-formed urgent work is ordinary
    queueing, not preemption. Spans on one compute engine are disjoint,
    so summed intersections never exceed the window.
    """
    overlap = 0.0
    for start, end, span_priority, span_formed in compute_spans:
        if span_priority < priority and span_formed > formed_s:
            lo = max(start, window_start)
            hi = min(end, window_end)
            if hi > lo:
                overlap += hi - lo
    return min(overlap, window_end - window_start)


def _leading_segments(
    arrival: float,
    execution: "BatchExecution",
    compute_spans: dict[int, list[tuple[float, float, int, float]]],
) -> tuple["BatchExecution", float, float, float, float, float]:
    """One launch's five leading segments against one release instant.

    Returns ``(critical_part, wait_for_batch, queued_behind, preempted,
    cold_build, stage_in)`` — everything but the residual ``compute``,
    which the caller closes against its own latency (per launch for
    single-kernel requests, end-to-end for pipeline chains). The copy-
    engine boundaries are recomputed with the same left-to-right float
    arithmetic ``DeviceWorker.schedule`` used, so they land on the
    identical values.
    """
    part = _critical_part(execution)
    batch = execution.batch
    wait_for_batch = batch.formed_s - arrival
    queue_window = part.start_s - batch.formed_s
    preempted = _preempted_overlap(
        batch.formed_s,
        part.start_s,
        batch.priority,
        batch.formed_s,
        compute_spans[part.worker_index],
    )
    build_end = part.start_s + part.build_s
    copy_end = build_end + part.stage_in_s
    engine_wait = part.compute_start_s - copy_end
    queued_behind = (queue_window - preempted) + engine_wait
    cold_build = build_end - part.start_s
    stage_in = copy_end - build_end
    return part, wait_for_batch, queued_behind, preempted, cold_build, stage_in


def attribute(
    outcomes: list["RequestOutcome"], executions: list["BatchExecution"]
) -> list[RequestPath]:
    """Decompose every completed request's latency along its critical path.

    Pure function over a finished run's outcomes and executions (the
    report's own fields) — no recorder required, so attribution is
    available on every run. Returns one :class:`RequestPath` per
    completed request, in outcome (offered) order. Pipeline outcomes (a
    non-empty ``stage_chain``) sum each gating launch's leading segments
    across the chain; the path's ``worker_index`` is the final stage's.
    """
    by_bid: dict[int, BatchExecution] = {}
    compute_spans: dict[int, list[tuple[float, float, int, float]]] = {}
    for execution in executions:
        by_bid[execution.batch.bid] = execution
        parts = execution.shards if execution.is_split else [execution]
        for part in parts:
            compute_spans.setdefault(part.worker_index, []).append(
                (
                    part.compute_start_s,
                    part.completion_s,
                    part.batch.priority,
                    part.batch.formed_s,
                )
            )
    paths: list[RequestPath] = []
    for outcome in outcomes:
        if outcome.completion_s is None or outcome.batch_id is None:
            continue
        execution = by_bid.get(outcome.batch_id)
        if execution is None:
            raise ShapeError(
                f"request {outcome.request.rid} completed in batch "
                f"{outcome.batch_id}, but no execution records that batch"
            )
        arrival = outcome.request.arrival_s
        latency = outcome.completion_s - arrival
        if outcome.stage_chain:
            wait_for_batch = queued_behind = preempted = 0.0
            cold_build = stage_in = 0.0
            part = None
            for link in outcome.stage_chain:
                link_exec = by_bid.get(link.batch_id)
                if link_exec is None:
                    raise ShapeError(
                        f"request {outcome.request.rid} stage {link.stage!r} "
                        f"completed in batch {link.batch_id}, but no "
                        "execution records that batch"
                    )
                part, wait, queued, pre, cold, sin = _leading_segments(
                    link.arrival_s, link_exec, compute_spans
                )
                wait_for_batch += wait
                queued_behind += queued
                preempted += pre
                cold_build += cold
                stage_in += sin
            batch = execution.batch
        else:
            part, wait_for_batch, queued_behind, preempted, cold_build, stage_in = (
                _leading_segments(arrival, execution, compute_spans)
            )
            batch = execution.batch
        # Close the decomposition as a residual: the five leading segments
        # are exact boundary differences, and making compute the remainder
        # guarantees the six sum bit-exactly to the recorded latency (a
        # naive completion - compute_start differs by float rounding).
        compute = latency - (
            wait_for_batch + queued_behind + preempted + cold_build + stage_in
        )
        paths.append(
            RequestPath(
                rid=outcome.request.rid,
                bid=batch.bid,
                priority=batch.priority,
                tenant=batch.tenant,
                worker_index=part.worker_index,
                latency_s=latency,
                wait_for_batch_s=wait_for_batch,
                queued_behind_s=queued_behind,
                preempted_by_s=preempted,
                cold_build_s=cold_build,
                stage_in_s=stage_in,
                compute_s=compute,
            )
        )
    return paths


def blame(paths: list[RequestPath], q: float = 99.0) -> BlameReport | None:
    """Roll per-request paths up into the tail's per-segment blame.

    The cohort is every request whose latency is at or beyond the
    ``q``-th percentile (so p99 blame explains the requests that *are*
    the p99, not the easy median). Returns ``None`` when no request
    completed.
    """
    if not paths:
        return None
    latencies = [p.latency_s for p in paths]
    threshold = percentile(latencies, q)
    cohort = [p for p in paths if p.latency_s >= threshold]
    totals = {name: 0.0 for name in SEGMENTS}
    for path in cohort:
        for name, value in path.segments().items():
            totals[name] += value
    grand_total = sum(totals.values())
    return BlameReport(
        q=q,
        threshold_s=threshold,
        n_requests=len(cohort),
        seconds={name: totals[name] / len(cohort) for name in SEGMENTS},
        shares={
            name: (totals[name] / grand_total if grand_total > 0 else 0.0)
            for name in SEGMENTS
        },
    )
