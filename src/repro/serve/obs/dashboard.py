"""A self-contained, byte-deterministic HTML dashboard of one run.

:func:`render_dashboard` turns a monitored
:class:`~repro.serve.service.ServiceReport` into a single HTML file with
no external assets — inline CSS, inline-SVG sparklines — that opens in
any browser:

* a header stat grid (offered/completed/shed, latency percentiles vs the
  SLO, throughput/goodput, device-seconds);
* one sparkline per monitor series (sorted by name, shared time axis), so
  arrival/completion/shed rates, queue depths, cache hit-rate, padded-ops
  fraction, fleet size, and per-worker busy fractions are all on one page;
* the alert timeline: every burn-rate alert as a pending/firing band over
  the run's time axis, plus the full lifecycle table;
* the p99 blame breakdown (critical-path segment shares of the tail);
* the fleet timeline (accepting vs provisioned step functions) with
  per-worker busy-fraction bars.

Determinism is a hard bar, the same one the golden CSVs and the golden
trace meet: every number renders through fixed ``%.6g``-style formatting,
series iterate in sorted order, and nothing reads a wall clock — the same
seed produces byte-identical HTML, which is what lets a dashboard digest
be checked in and gated by ``scripts/check_golden.py``.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ShapeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.serve.obs.monitor import TimeSeries
    from repro.serve.service import ServiceReport

#: sparkline geometry (px).
_SPARK_W, _SPARK_H = 260, 44
#: timeline geometry (px).
_TL_W, _TL_H_ROW = 680, 16

_CSS = """\
body{font:13px/1.45 system-ui,sans-serif;margin:24px;color:#1a1a2e;background:#fafafc}
h1{font-size:20px;margin:0 0 4px}h2{font-size:15px;margin:28px 0 8px;border-bottom:1px solid #ddd;padding-bottom:4px}
table{border-collapse:collapse;margin:8px 0}td,th{border:1px solid #ddd;padding:3px 8px;text-align:right}
th{background:#eef;font-weight:600}td:first-child,th:first-child{text-align:left}
.grid{display:flex;flex-wrap:wrap;gap:14px}.card{border:1px solid #ddd;border-radius:6px;padding:8px 10px;background:#fff}
.card .name{font-family:ui-monospace,monospace;font-size:11px;color:#555}
.card .last{font-weight:600}.muted{color:#777;font-size:11px}
.stat{min-width:130px}.stat .v{font-size:17px;font-weight:600}
svg{display:block}polyline{fill:none;stroke:#3b5bdb;stroke-width:1.5}
.axis{stroke:#ccc;stroke-width:1}.pending{fill:#f2b705}.firing{fill:#d7263d}
.accepting{stroke:#2b8a3e}.provisioned{stroke:#868e96;stroke-dasharray:3 2}
.bar{fill:#3b5bdb}.barbg{fill:#e9ecef}
"""


def _fmt(value: float) -> str:
    """Fixed deterministic number formatting for all dashboard text."""
    return format(value, ".6g")


def _px(value: float) -> str:
    """Fixed deterministic pixel-coordinate formatting."""
    return format(value, ".2f")


def _esc(text: str) -> str:
    return html.escape(str(text), quote=True)


def _sparkline(series: TimeSeries, t0: float, t1: float) -> str:
    """One inline-SVG sparkline over the shared time axis ``[t0, t1]``."""
    points = series.points
    span = t1 - t0
    vmin = series.minimum
    vmax = series.maximum
    if vmax == vmin:  # flat series: draw it mid-height
        vmin, vmax = vmin - 0.5, vmax + 0.5
    coords = []
    for t, v in points:
        x = (t - t0) / span * _SPARK_W if span > 0 else 0.0
        y = _SPARK_H - 4 - (v - vmin) / (vmax - vmin) * (_SPARK_H - 8)
        coords.append(f"{_px(x)},{_px(y)}")
    return (
        f'<svg width="{_SPARK_W}" height="{_SPARK_H}" '
        f'viewBox="0 0 {_SPARK_W} {_SPARK_H}">'
        f'<line class="axis" x1="0" y1="{_SPARK_H - 4}" x2="{_SPARK_W}" '
        f'y2="{_SPARK_H - 4}"/>'
        f'<polyline points="{" ".join(coords)}"/></svg>'
    )


def _series_cards(report: ServiceReport, t0: float, t1: float) -> list[str]:
    parts = ['<div class="grid" id="series">']
    for name in sorted(report.monitor.series):
        series = report.monitor.series[name]
        if not series.points:
            continue
        parts.append(
            '<div class="card">'
            f'<div class="name">{_esc(name)}</div>'
            f"{_sparkline(series, t0, t1)}"
            f'<div class="muted">min {_fmt(series.minimum)} · '
            f'max {_fmt(series.maximum)} · '
            f'last <span class="last">{_fmt(series.latest)}</span></div>'
            "</div>"
        )
    parts.append("</div>")
    return parts


def _stat(label: str, value: str) -> str:
    return (
        f'<div class="card stat"><div class="muted">{_esc(label)}</div>'
        f'<div class="v">{value}</div></div>'
    )


def _header_stats(report: ServiceReport) -> list[str]:
    slo_ms = report.slo.p99_latency_s * 1e3
    verdict = "attained" if report.slo_attained else "MISSED"
    return [
        '<div class="grid" id="stats">',
        _stat(
            "requests",
            f"{report.n_offered} offered · {report.n_completed} done",
        ),
        _stat("shed", f"{_fmt(report.shed_rate * 100.0)}%"),
        _stat(
            "latency p50 / p99",
            f"{_fmt(report.p50_latency_s * 1e3)} / "
            f"{_fmt(report.p99_latency_s * 1e3)} ms",
        ),
        _stat("SLO p99", f"{_fmt(slo_ms)} ms · {verdict}"),
        _stat(
            "rate",
            f"{_fmt(report.throughput_rps)} req/s · "
            f"{_fmt(report.goodput_rps)} good",
        ),
        _stat(
            "fleet",
            f"{report.n_devices} workers · "
            f"{_fmt(report.device_seconds * 1e3)} device-ms",
        ),
        "</div>",
    ]


def _timeline_x(t_s: float, t0: float, t1: float) -> float:
    span = t1 - t0
    return (t_s - t0) / span * _TL_W if span > 0 else 0.0


def _alert_section(report: ServiceReport, t0: float, t1: float) -> list[str]:
    engine = report.monitor.engine
    alerts = engine.history
    parts = [f'<div id="alerts"><p class="muted">objective '
             f"{_fmt(engine.objective * 100.0)}% in-deadline · "
             f"{engine.count('firing')} fired · "
             f"{engine.count('resolved')} resolved · "
             f"{engine.count('cancelled')} cancelled</p>"]
    if alerts:
        height = len(alerts) * _TL_H_ROW + 4
        rows = []
        for i, alert in enumerate(alerts):
            y = i * _TL_H_ROW + 2
            end_pending = (
                alert.firing_s
                if alert.firing_s is not None
                else (alert.cancelled_s if alert.cancelled_s is not None else t1)
            )
            x0 = _timeline_x(alert.pending_s, t0, t1)
            x1 = _timeline_x(end_pending, t0, t1)
            rows.append(
                f'<rect class="pending" x="{_px(x0)}" y="{y}" '
                f'width="{_px(max(x1 - x0, 1.0))}" height="{_TL_H_ROW - 4}"/>'
            )
            if alert.firing_s is not None:
                end_firing = alert.resolved_s if alert.resolved_s is not None else t1
                fx0 = _timeline_x(alert.firing_s, t0, t1)
                fx1 = _timeline_x(end_firing, t0, t1)
                rows.append(
                    f'<rect class="firing" x="{_px(fx0)}" y="{y}" '
                    f'width="{_px(max(fx1 - fx0, 1.0))}" height="{_TL_H_ROW - 4}"/>'
                )
        parts.append(
            f'<svg width="{_TL_W}" height="{height}" '
            f'viewBox="0 0 {_TL_W} {height}">' + "".join(rows) + "</svg>"
        )
        parts.append(
            "<table><tr><th>alert</th><th>pending (ms)</th><th>fired (ms)</th>"
            "<th>resolved (ms)</th><th>peak burn</th></tr>"
        )
        for alert in alerts:
            def cell(t_s: float | None) -> str:
                return _fmt(t_s * 1e3) if t_s is not None else "—"

            resolved = alert.resolved_s
            if resolved is None and alert.cancelled_s is not None:
                resolved = alert.cancelled_s
            parts.append(
                f"<tr><td>{_esc(alert.aid)}</td>"
                f"<td>{cell(alert.pending_s)}</td>"
                f"<td>{cell(alert.firing_s)}</td>"
                f"<td>{cell(resolved)}</td>"
                f"<td>{_fmt(alert.peak_burn)}x</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append('<p class="muted">no alerts raised</p>')
    parts.append("</div>")
    return parts


def _blame_section(report: ServiceReport) -> list[str]:
    parts = ['<div id="blame">']
    tail = report.blame() if report.n_completed > 0 else None
    if tail is None:
        parts.append('<p class="muted">no completed requests to attribute</p>')
    else:
        parts.append(
            f'<p class="muted">p{_fmt(tail.q)} tail cohort: '
            f"{tail.n_requests} requests at ≥ "
            f"{_fmt(tail.threshold_s * 1e3)} ms</p>"
        )
        parts.append("<table><tr><th>segment</th><th>share</th><th>bar</th></tr>")
        for segment, share in sorted(
            tail.shares.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            width = share * 220.0
            parts.append(
                f"<tr><td>{_esc(segment)}</td>"
                f"<td>{_fmt(share * 100.0)}%</td>"
                f'<td><svg width="220" height="10" viewBox="0 0 220 10">'
                f'<rect class="barbg" x="0" y="0" width="220" height="10"/>'
                f'<rect class="bar" x="0" y="0" width="{_px(width)}" '
                f'height="10"/></svg></td></tr>'
            )
        parts.append("</table>")
    parts.append("</div>")
    return parts


def _fleet_section(report: ServiceReport, t0: float, t1: float) -> list[str]:
    parts = ['<div id="fleet">']
    timeline = report.fleet_timeline
    if timeline is not None and timeline.points:
        peak = max(provisioned for _, _, provisioned in timeline.points)
        height = 60

        def step_path(values: list[tuple[float, int]]) -> str:
            coords = []
            prev_y = None
            for t_s, n in values:
                x = _timeline_x(t_s, t0, t1)
                y = height - 6 - (n / peak) * (height - 12) if peak else height - 6
                if prev_y is not None:
                    coords.append(f"{_px(x)},{_px(prev_y)}")
                coords.append(f"{_px(x)},{_px(y)}")
                prev_y = y
            if prev_y is not None:
                coords.append(f"{_px(_TL_W)},{_px(prev_y)}")
            return " ".join(coords)

        accepting = step_path([(t, a) for t, a, _ in timeline.points])
        provisioned = step_path([(t, p) for t, _, p in timeline.points])
        parts.append(
            f'<p class="muted">fleet size over time (peak provisioned {peak}): '
            '<span class="accepting">— accepting</span> · '
            '<span class="provisioned">- - provisioned</span></p>'
            f'<svg width="{_TL_W}" height="{height}" '
            f'viewBox="0 0 {_TL_W} {height}">'
            f'<polyline class="provisioned" points="{provisioned}"/>'
            f'<polyline class="accepting" points="{accepting}"/></svg>'
        )
    busy = report.worker_busy_fractions()
    if busy:
        parts.append(
            "<table><tr><th>worker</th><th>busy</th><th>window (ms)</th>"
            "<th>bar</th></tr>"
        )
        for index, fraction in enumerate(busy):
            device = (
                report.device_names[index]
                if index < len(report.device_names)
                else "?"
            )
            start_s, end_s = report.worker_spans[index]
            parts.append(
                f"<tr><td>worker{index}/{_esc(device)}</td>"
                f"<td>{_fmt(fraction * 100.0)}%</td>"
                f"<td>{_fmt(start_s * 1e3)}–{_fmt(end_s * 1e3)}</td>"
                f'<td><svg width="220" height="10" viewBox="0 0 220 10">'
                f'<rect class="barbg" x="0" y="0" width="220" height="10"/>'
                f'<rect class="bar" x="0" y="0" '
                f'width="{_px(min(fraction, 1.0) * 220.0)}" height="10"/>'
                "</svg></td></tr>"
            )
        parts.append("</table>")
    parts.append("</div>")
    return parts


def render_dashboard(report: ServiceReport, title: str = "Service dashboard") -> str:
    """The dashboard HTML for one monitored run — byte-deterministic.

    Raises :class:`ShapeError` for unmonitored reports: every panel but
    the header needs the monitor's time axis, and a dashboard of one
    end-of-run snapshot would be a lie of omission.
    """
    if report.monitor is None:
        raise ShapeError(
            "render_dashboard needs a monitored report: run the service "
            "with a ServiceMonitor (monitor=...)"
        )
    sampler = report.monitor.sampler
    t0 = 0.0
    t1 = max(
        (series.points[-1][0] for series in report.monitor.series.values() if series.points),
        default=sampler.interval_s,
    )
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f'<p class="muted">deterministic replay · {sampler.n_ticks} samples at '
        f"{_fmt(sampler.interval_s * 1e6)} µs cadence · simulated horizon "
        f"{_fmt(t1 * 1e3)} ms</p>",
        "<h2>Run at a glance</h2>",
        *_header_stats(report),
        "<h2>Time series</h2>",
        *_series_cards(report, t0, t1),
        "<h2>Alerts</h2>",
        *_alert_section(report, t0, t1),
        "<h2>p99 blame</h2>",
        *_blame_section(report),
        "<h2>Fleet</h2>",
        *_fleet_section(report, t0, t1),
        "</body></html>",
    ]
    return "\n".join(parts) + "\n"


def write_dashboard(
    report: ServiceReport, path: str | Path, title: str = "Service dashboard"
) -> Path:
    """Write :func:`render_dashboard` output to ``path``."""
    path = Path(path)
    path.write_text(render_dashboard(report, title=title))
    return path
