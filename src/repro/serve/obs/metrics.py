"""Fleet metrics: named counters, gauges, and histograms.

The trace answers "what happened to request 1734"; the
:class:`MetricsRegistry` answers "how is the service doing" — the
aggregate counters a live deployment would export to its monitoring
system. ``service``, ``dispatch``, ``scheduler``, ``cache``, and
``autoscale`` all publish into one registry owned by the
:class:`~repro.serve.service.BeamformingService`; its snapshot lands in
the service report (and in ``repro-bench --output`` JSON as the
``metrics`` block).

Everything here is deterministic: counters are exact integers (or exact
float sums), histograms use fixed bucket edges, and snapshots render in
sorted-name order — so metrics are golden-safe and replay byte-identical
like the rest of the simulation.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from repro.errors import ShapeError

#: default latency histogram bucket edges, milliseconds.
DEFAULT_LATENCY_EDGES_MS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0)


@dataclass
class Counter:
    """A monotonically increasing count (requests admitted, cache hits...)."""

    name: str
    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ShapeError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n


@dataclass
class Gauge:
    """A point-in-time level (queue depth, fleet size); remembers its peak."""

    name: str
    value: float = 0.0
    peak: float = 0.0
    #: number of times the gauge was set (0 means never observed).
    samples: int = 0

    def set(self, value: float) -> None:
        self.value = value
        self.peak = value if self.samples == 0 else max(self.peak, value)
        self.samples += 1


@dataclass
class Histogram:
    """Fixed-bucket histogram with exact count/sum (latency distributions).

    ``edges`` are ascending upper bounds; observations land in the first
    bucket whose edge is >= the value, with one implicit overflow bucket
    past the last edge. Deterministic by construction — no adaptive
    binning, no floating-point re-ordering.
    """

    name: str
    edges: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if list(self.edges) != sorted(set(self.edges)):
            raise ShapeError(f"histogram edges must be strictly ascending, got {self.edges}")
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0


class MetricsRegistry:
    """Get-or-create registry of named counters / gauges / histograms.

    Names are dotted paths (``"cache.hits"``, ``"scheduler.preemptions"``);
    a name is permanently one kind — asking for an existing name as a
    different kind raises. The convenience mutators (:meth:`inc`,
    :meth:`set_gauge`, :meth:`observe`) are what the serving stack calls
    on its hot paths; :meth:`snapshot` and :meth:`render` are the report
    faces.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------------

    def _check_free(self, name: str, table: dict) -> None:
        for kind, other in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other is not table and name in other:
                raise ShapeError(f"metric {name!r} already registered as a {kind}")

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            self._check_free(name, self._counters)
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            self._check_free(name, self._gauges)
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, edges: tuple[float, ...] = DEFAULT_LATENCY_EDGES_MS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            self._check_free(name, self._histograms)
            histogram = self._histograms[name] = Histogram(name, tuple(edges))
        elif histogram.edges != tuple(edges):
            raise ShapeError(
                f"histogram {name!r} already registered with edges {histogram.edges}"
            )
        return histogram

    # -- hot-path mutators ---------------------------------------------------

    def inc(self, name: str, n: float = 1.0) -> None:
        """Increment the named counter (created on first use)."""
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge (created on first use)."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        self.histogram(name).observe(value)

    # -- report faces --------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready view of every metric, sorted by name within kind."""
        return {
            "counters": {name: self._counters[name].value for name in sorted(self._counters)},
            "gauges": {
                name: {
                    "value": self._gauges[name].value,
                    "peak": self._gauges[name].peak,
                    "samples": self._gauges[name].samples,
                }
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "edges": list(self._histograms[name].edges),
                    "counts": list(self._histograms[name].counts),
                    "total": self._histograms[name].total,
                    "sum": self._histograms[name].sum,
                }
                for name in sorted(self._histograms)
            },
        }

    def render(self) -> str:
        """Text snapshot for report summaries, one metric per line."""
        lines: list[str] = []
        for name in sorted(self._counters):
            value = self._counters[name].value
            text = f"{value:g}" if value != int(value) else f"{int(value)}"
            lines.append(f"{name} = {text}")
        for name in sorted(self._gauges):
            gauge = self._gauges[name]
            lines.append(f"{name} = {gauge.value:g} (peak {gauge.peak:g})")
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            lines.append(
                f"{name}: n={histogram.total} mean={histogram.mean:.4g} sum={histogram.sum:.4g}"
            )
        return "\n".join(lines)
