"""Typed span events: one dataclass per request-lifecycle edge.

Every edge a request crosses on its way through the serving tier —
arrival, placement, admission, batching, queueing, dispatch, execution,
completion — plus the fleet-side edges (plan-cache lookups, autoscale
actions, drains and retirements) is recorded as one frozen dataclass
below. The :class:`~repro.serve.obs.trace.TraceRecorder` collects them in
emission order; the Perfetto exporter and the critical-path attribution
pass are pure functions over the resulting list.

All timestamps are **simulation-clock** seconds (the same clock every
other number in a :class:`~repro.serve.service.ServiceReport` uses), so a
trace is exactly as bit-deterministic as the run that produced it: same
seed, same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SpanEvent:
    """Base of every trace event: one timestamped lifecycle edge.

    ``t_s`` is simulation time in seconds. Subclasses add the identifiers
    that tie the edge to a request (``rid``), a batch (``bid``), or a
    worker (``worker_index``).
    """

    t_s: float


@dataclass(frozen=True)
class RequestArrived(SpanEvent):
    """A request reached the front door (before placement or admission)."""

    rid: int
    workload: str
    priority: int
    tenant: str


@dataclass(frozen=True)
class PlacementDecided(SpanEvent):
    """The placer's verdict for one arrival: route / merge / split / shed.

    ``costs`` lists every capable worker's predicted steady-state service
    time for the decision's workload, ``(worker_index, service_s)`` in
    index order — the alternatives the cost model weighed. ``chosen_s``
    is the decision's own predicted service time (the minimum for
    route/merge, the slowest shard for a split, ``inf`` for a shed).
    """

    rid: int
    kind: str
    workload: str
    chosen_s: float
    costs: tuple[tuple[int, float], ...] = ()
    shed_reason: str = ""


@dataclass(frozen=True)
class AdmissionDecided(SpanEvent):
    """The admission controller's verdict for one placed arrival.

    ``projected_s`` is the class-aware latency projection the verdict was
    made against (``inf`` for shed-kind placements); ``reason`` is
    ``"ok"`` for admits and the shed cause otherwise (``"deadline"``,
    ``"depth"``, or the placement shed reasons ``"capability"`` /
    ``"capacity"``).
    """

    rid: int
    admitted: bool
    projected_s: float
    queue_depth: int
    priority: int
    reason: str


@dataclass(frozen=True)
class BatcherEnqueued(SpanEvent):
    """An admitted request joined a forming micro-batch group.

    ``group_seq`` is the forming group's creation sequence (stable across
    the group's lifetime; the flushed batch id is only assigned at close);
    ``n_waiting`` counts the group's members after this request joined.
    """

    rid: int
    workload: str
    group_seq: int
    n_waiting: int


@dataclass(frozen=True)
class BatchClosed(SpanEvent):
    """A forming group flushed into a dispatchable batch.

    ``cause`` states *why* the batch stopped waiting: ``"max_batch"``
    (size trigger), ``"max_wait"`` (latency trigger), or ``"decision"``
    (a split placement bypasses group formation entirely). ``rids`` are
    the member requests in offer order.
    """

    bid: int
    cause: str
    workload: str
    priority: int
    tenant: str
    rids: tuple[int, ...]


@dataclass(frozen=True)
class BatchQueued(SpanEvent):
    """A flushed batch entered the priority scheduler's ready queue."""

    bid: int
    priority: int
    tenant: str
    n_requests: int


@dataclass(frozen=True)
class BatchPreempted(SpanEvent):
    """A queued batch was jumped by a later-formed, more urgent one.

    Emitted when the scheduler pops ``by_bid`` while ``bid`` — formed
    earlier but of a less urgent class — stays queued: the non-destructive
    preemption edge, recorded per overtake so a trace shows exactly who
    waited for whom.
    """

    bid: int
    by_bid: int
    priority: int
    by_priority: int


@dataclass(frozen=True)
class BatchHeld(SpanEvent):
    """A popped batch found all its eligible workers busy and was parked.

    Held batches retry first on the next drain; each hold is recorded, so
    a capability-bound batch waiting out a saturated pool leaves a visible
    series of holds rather than silently long queue time.
    """

    bid: int
    priority: int
    candidates: tuple[int, ...]


@dataclass(frozen=True)
class CacheLookup(SpanEvent):
    """One plan-cache lookup at dispatch: hit or miss (cold build).

    ``build_s`` is the one-time plan-build latency charged to the
    faulting batch (0 on a hit); ``worker_index`` is the dispatching
    worker (-1 when the lookup happened outside worker context).
    """

    device: str
    worker_index: int
    workload: str
    n_requests: int
    hit: bool
    build_s: float


@dataclass(frozen=True)
class BatchExecuted(SpanEvent):
    """One batch landed on one worker's engines — the execution timeline.

    ``t_s`` equals ``start_s``. The interval fields mirror
    :class:`~repro.serve.dispatch.BatchExecution`: the copy engine runs
    ``[start_s, start_s + build_s + stage_in_s]`` (plan build first, then
    stage-in), the compute engine runs ``[compute_start_s,
    completion_s]``. For a split placement one event is emitted per
    shard, with ``shard_index`` its position in the decision (``-1`` for
    unsharded batches).
    """

    bid: int
    worker_index: int
    device: str
    workload: str
    priority: int
    tenant: str
    n_requests: int
    rids: tuple[int, ...]
    ready_s: float
    start_s: float
    build_s: float
    stage_in_s: float
    compute_start_s: float
    completion_s: float
    shard_index: int = -1


@dataclass(frozen=True)
class RequestCompleted(SpanEvent):
    """A request's batch finished: the end of its lifecycle span."""

    rid: int
    bid: int
    latency_s: float
    tenant: str
    priority: int


@dataclass(frozen=True)
class ScaleApplied(SpanEvent):
    """One applied fleet change: scale-up, drain begun, or retirement.

    ``kind`` mirrors :class:`~repro.serve.autoscale.ScaleEvent`:
    ``"up"``, ``"down"`` (drain began), or ``"retire"`` (drained worker
    left). ``accepting``/``provisioned`` are the fleet sizes right after.
    """

    kind: str
    worker_index: int
    device: str
    accepting: int
    provisioned: int
    reason: str = ""


@dataclass(frozen=True)
class AlertStateChanged(SpanEvent):
    """One burn-rate alert lifecycle transition from the alert engine.

    ``state`` is one of ``"pending"``, ``"firing"``, ``"resolved"``,
    ``"cancelled"`` (a pending alert whose condition cleared before the
    hold-down elapsed). ``burn_fast``/``burn_slow`` are the rule's two
    window burn rates at the evaluating tick — the evidence the
    transition was decided on.
    """

    alert_id: str
    scope: str
    rule: str
    state: str
    burn_fast: float
    burn_slow: float


@dataclass(frozen=True)
class WorkerCrashed(SpanEvent):
    """A worker left the fleet *non-gracefully* (fault injection).

    The opposite of a drain: nothing in flight finishes. ``lost_batches``
    counts the executions revoked mid-flight and ``lost_requests`` the
    requests they carried — the work the recovery layer must now retry,
    hedge-promote, or fail.
    """

    worker_index: int
    device: str
    lost_batches: int
    lost_requests: int


@dataclass(frozen=True)
class WorkerSlowed(SpanEvent):
    """A worker's compute rate changed (straggler onset or recovery).

    ``factor`` is the new slowdown multiplier: > 1 marks the onset of a
    transient slowdown, exactly 1.0 marks recovery to full rate.
    """

    worker_index: int
    device: str
    factor: float


@dataclass(frozen=True)
class RequestRetried(SpanEvent):
    """A request lost to a crash was re-placed and re-submitted.

    ``attempt`` counts retries for this request so far (1 = first retry);
    ``budget`` is its class's total allowance.
    """

    rid: int
    attempt: int
    budget: int
    priority: int
    tenant: str


@dataclass(frozen=True)
class RequestFailed(SpanEvent):
    """An admitted request was abandoned: the failure end of its span.

    ``reason`` is ``"retries_exhausted"``, ``"deadline"`` (a retry could
    not finish inside the deadline budget), or ``"no_capable_worker"``
    (a lost shard with no surviving capable device).
    """

    rid: int
    reason: str
    priority: int
    tenant: str


@dataclass(frozen=True)
class HedgeLaunched(SpanEvent):
    """A duplicate launch of one batch on a healthier worker.

    ``primary_index`` is the straggler the batch first landed on,
    ``hedge_index`` the worker running the duplicate.
    """

    bid: int
    primary_index: int
    hedge_index: int
    primary_completion_s: float
    hedge_completion_s: float


@dataclass(frozen=True)
class HedgeResolved(SpanEvent):
    """A hedged batch settled: one launch won, the other is waste.

    ``winner`` is ``"primary"`` or ``"hedge"``; ``wasted_s`` is the losing
    launch's compute time, charged to the report's wasted-device-seconds.
    """

    bid: int
    winner: str
    wasted_s: float


@dataclass(frozen=True)
class ShardRecovered(SpanEvent):
    """A split request's lost shard re-executed on a surviving worker."""

    bid: int
    shard_index: int
    from_index: int
    to_index: int
    completion_s: float


@dataclass(frozen=True)
class StageStarted(SpanEvent):
    """One pipeline stage of a request was released for execution.

    Emitted for multi-stage pipeline requests only (single-kernel requests
    and one-stage pipelines keep the legacy event stream byte-identical).
    The source stage starts at admission; every other stage starts the
    instant its last dependency completes. ``stage_index`` is the stage's
    position in the pipeline's topological order and ``dep_indices`` its
    dependencies' positions — the stable ids the Perfetto exporter uses
    for stage->stage flow arrows.
    """

    rid: int
    pipeline: str
    stage: str
    stage_index: int
    dep_indices: tuple[int, ...] = ()


@dataclass(frozen=True)
class StageCompleted(SpanEvent):
    """One pipeline stage of a request finished its batched launch.

    ``t_s`` is the launch's completion instant; ``bid`` the batch that
    served the stage. The request's own :class:`RequestCompleted` is
    emitted once, when its *last* stage completes.
    """

    rid: int
    pipeline: str
    stage: str
    stage_index: int
    bid: int


#: event-type name -> class, for exporters that dispatch on type.
EVENT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        RequestArrived,
        PlacementDecided,
        AdmissionDecided,
        BatcherEnqueued,
        BatchClosed,
        BatchQueued,
        BatchPreempted,
        BatchHeld,
        CacheLookup,
        BatchExecuted,
        RequestCompleted,
        ScaleApplied,
        AlertStateChanged,
        WorkerCrashed,
        WorkerSlowed,
        RequestRetried,
        RequestFailed,
        HedgeLaunched,
        HedgeResolved,
        ShardRecovered,
        StageStarted,
        StageCompleted,
    )
}
