"""Service-level objectives, latency accounting, and admission control.

A serving tier is judged on its tail, not its mean: the SLO here is a p99
latency target plus an optional per-request deadline. Under overload an
unprotected queue grows without bound and *every* request misses; the
:class:`AdmissionController` sheds load at the front door instead, keeping
admitted requests inside the deadline at the price of an explicit shed
rate — the classic goodput-over-throughput trade.

Percentiles are computed with deterministic linear interpolation (no NumPy
percentile-method ambiguity), so reports are bit-stable run to run.

Multi-tenant serving additionally needs the tail *per priority class and
per tenant* — an aggregate p99 hides an interactive class being starved by
batch traffic. :class:`SLOTracker` accumulates per-(class, tenant) outcomes
and emits :class:`ClassStats` breakdowns; the :class:`AdmissionController`
keeps per-class shed counters so reports can show where the shedding
landed (a healthy overloaded service sheds its lowest class, nothing else).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ShapeError


@dataclass(frozen=True)
class SLO:
    """The service-level objective of a deployment.

    ``p99_latency_s``: the reported tail target (attainment check);
    ``deadline_s``: the per-request latency bound admission control
    protects (defaults to the p99 target).
    """

    p99_latency_s: float
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.p99_latency_s <= 0:
            raise ShapeError(f"p99 target must be positive, got {self.p99_latency_s}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ShapeError(f"deadline must be positive, got {self.deadline_s}")

    @property
    def admission_deadline_s(self) -> float:
        return self.deadline_s if self.deadline_s is not None else self.p99_latency_s


def percentile(values: list[float], q: float) -> float:
    """Deterministic percentile with linear interpolation.

    ``q`` in [0, 100]. An empty sample yields 0.0: a report with zero
    completions (every request shed, or lost to a crash storm) has no
    tail, and the latency axes read as zero rather than crashing the
    summary path. A single sample is every percentile; q=0 and q=100 are
    the exact minimum and maximum.
    """
    if not 0.0 <= q <= 100.0:
        raise ShapeError(f"percentile must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q / 100.0 * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class ClassStats:
    """Aggregate outcome of one slice (a priority class or a tenant)."""

    label: str
    n_offered: int = 0
    n_admitted: int = 0
    n_completed: int = 0
    p50_latency_s: float = 0.0
    p95_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    goodput_rps: float = 0.0
    throughput_rps: float = 0.0
    #: this slice's share of every shed request in the run (not its own
    #: shed rate) — the "who absorbed the overload" number.
    shed_share: float = 0.0

    @property
    def n_shed(self) -> int:
        return self.n_offered - self.n_admitted

    @property
    def shed_rate(self) -> float:
        return self.n_shed / self.n_offered if self.n_offered else 0.0


@dataclass
class FleetTimeline:
    """Step function of the fleet's size over one service run.

    Elastic fleets change size mid-trace; reports need both views of that:
    ``accepting`` (workers placement may target — what the latency story is
    about) and ``provisioned`` (workers that exist at all, draining ones
    included — what the bill is about). Each point is ``(t_s, accepting,
    provisioned)`` effective from ``t_s`` until the next point; a fixed
    fleet is a single point at ``t=0``.
    """

    points: list[tuple[float, int, int]] = field(default_factory=list)

    def record(self, t_s: float, accepting: int, provisioned: int) -> None:
        """Append one step (collapses consecutive identical sizes)."""
        if self.points and self.points[-1][0] > t_s:
            raise ShapeError(
                f"fleet timeline must advance in time: got {t_s} after "
                f"{self.points[-1][0]}"
            )
        if self.points and self.points[-1][1:] == (accepting, provisioned):
            return
        self.points.append((t_s, accepting, provisioned))

    def size_at(self, t_s: float) -> int:
        """Accepting fleet size in effect at ``t_s`` (0 before any point)."""
        size = 0
        for t, accepting, _ in self.points:
            if t > t_s:
                break
            size = accepting
        return size

    @property
    def peak_size(self) -> int:
        """Largest *accepting* size reached (the serving-capacity peak)."""
        return max((accepting for _, accepting, _ in self.points), default=0)

    @property
    def peak_provisioned(self) -> int:
        """Largest *provisioned* size reached (the cost peak — draining
        workers still bill; pairs with :meth:`device_seconds`)."""
        return max((provisioned for _, _, provisioned in self.points), default=0)

    def device_seconds(self, end_s: float) -> float:
        """Integral of the *provisioned* size over ``[first point, end_s]``.

        The cost of the run in device-time: a draining worker is still
        provisioned (it bills) even though placement no longer targets it.
        This is the equal-resources axis on which elastic and fixed fleets
        are compared — an autoscaler is only interesting if it beats a
        fixed fleet of the same device-seconds.
        """
        total = 0.0
        for i, (t, _, provisioned) in enumerate(self.points):
            t_next = self.points[i + 1][0] if i + 1 < len(self.points) else end_s
            total += provisioned * max(min(t_next, end_s) - t, 0.0)
        return total

    def mean_size(self, end_s: float) -> float:
        """Time-averaged provisioned size over the run."""
        if not self.points:
            return 0.0
        span = end_s - self.points[0][0]
        return self.device_seconds(end_s) / span if span > 0 else 0.0


@dataclass
class _Slice:
    n_offered: int = 0
    n_admitted: int = 0
    latencies_s: list[float] = field(default_factory=list)


class SLOTracker:
    """Accumulates per-request outcomes sliced by priority class and tenant.

    Feed it one :meth:`record` per offered request (shed requests carry
    ``latency_s=None``); read back :meth:`by_priority` / :meth:`by_tenant`
    breakdowns. All statistics are deterministic: percentiles use
    :func:`percentile`, empty slices report 0.0 tails rather than raising,
    and slices appear in first-seen order.
    """

    def __init__(self, slo: SLO):
        self.slo = slo
        self._by_priority: dict[int, _Slice] = {}
        self._by_tenant: dict[str, _Slice] = {}

    def record(
        self,
        priority: int,
        tenant: str,
        admitted: bool,
        latency_s: float | None,
    ) -> None:
        """Account one offered request to its class and tenant slices."""
        for table, key in ((self._by_priority, priority), (self._by_tenant, tenant)):
            slice_ = table.get(key)
            if slice_ is None:
                slice_ = table[key] = _Slice()
            slice_.n_offered += 1
            if admitted:
                slice_.n_admitted += 1
            if latency_s is not None:
                slice_.latencies_s.append(latency_s)

    @property
    def n_shed(self) -> int:
        return sum(s.n_offered - s.n_admitted for s in self._by_priority.values())

    def shed_share(self, priority: int) -> float:
        """Fraction of all shed requests that came from one class."""
        total = self.n_shed
        if total == 0:
            return 0.0
        slice_ = self._by_priority.get(priority)
        return (slice_.n_offered - slice_.n_admitted) / total if slice_ else 0.0

    def by_priority(self, span_s: float = 0.0) -> list[ClassStats]:
        """One :class:`ClassStats` per priority class, most urgent first."""
        return [
            self._stats(f"priority={p}", self._by_priority[p], span_s)
            for p in sorted(self._by_priority)
        ]

    def by_tenant(self, span_s: float = 0.0) -> list[ClassStats]:
        """One :class:`ClassStats` per tenant, in first-seen order."""
        return [self._stats(tenant, slice_, span_s) for tenant, slice_ in self._by_tenant.items()]

    def _stats(self, label: str, slice_: _Slice, span_s: float) -> ClassStats:
        lat = slice_.latencies_s
        deadline = self.slo.admission_deadline_s
        good = sum(1 for t in lat if t <= deadline)
        total_shed = self.n_shed
        shed = slice_.n_offered - slice_.n_admitted
        return ClassStats(
            label=label,
            n_offered=slice_.n_offered,
            n_admitted=slice_.n_admitted,
            n_completed=len(lat),
            p50_latency_s=percentile(lat, 50.0) if lat else 0.0,
            p95_latency_s=percentile(lat, 95.0) if lat else 0.0,
            p99_latency_s=percentile(lat, 99.0) if lat else 0.0,
            goodput_rps=good / span_s if span_s > 0 else 0.0,
            throughput_rps=len(lat) / span_s if span_s > 0 else 0.0,
            shed_share=shed / total_shed if total_shed else 0.0,
        )


class AdmissionController:
    """Front-door load shedding against a latency estimate and queue depth.

    A request is admitted unless

    * the projected latency (batching wait + queue backlog + service
      estimate, scaled by ``headroom``) exceeds the SLO's admission
      deadline, or
    * more than ``max_queue_depth`` admitted requests are already waiting
      (forming batches plus in-flight dispatches).

    ``headroom > 1`` sheds earlier (conservative), ``< 1`` later. The
    estimate intentionally uses only information available at arrival time
    — no peeking at future arrivals — so the same controller logic would
    run unchanged in a live deployment.
    """

    def __init__(
        self,
        slo: SLO,
        max_queue_depth: int | None = None,
        headroom: float = 1.0,
    ):
        if headroom <= 0:
            raise ShapeError(f"headroom must be positive, got {headroom}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ShapeError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.slo = slo
        self.max_queue_depth = max_queue_depth
        self.headroom = headroom
        self.n_admitted = 0
        self.n_shed = 0
        #: per-priority-class shed counts ("who absorbed the overload").
        self.shed_by_class: dict[int, int] = {}
        #: shed counts by cause ("deadline" / "depth").
        self.shed_by_reason: dict[str, int] = {}
        #: cause of the most recent verdict: "ok", "deadline", or "depth"
        #: (tracing reads this right after :meth:`admit`).
        self.last_reason = "ok"
        #: optional :class:`~repro.serve.obs.metrics.MetricsRegistry` the
        #: controller publishes admit/shed counters into.
        self.metrics = None

    def admit(self, estimated_latency_s: float, queue_depth: int, priority: int = 0) -> bool:
        """Decide one arrival; updates the shed/admit counters.

        ``priority`` only labels the decision for the per-class counters.
        Class-awareness lives in the *estimate* the caller passes: the
        service projects latency from the work queued at the request's own
        class and above (more urgent), so under overload the lowest class
        sees the longest projected queue and sheds first — strictly, once
        its backlog alone busts the deadline.
        """
        over_deadline = estimated_latency_s * self.headroom > self.slo.admission_deadline_s
        over_depth = self.max_queue_depth is not None and queue_depth >= self.max_queue_depth
        if over_deadline or over_depth:
            self.n_shed += 1
            self.shed_by_class[priority] = self.shed_by_class.get(priority, 0) + 1
            self.last_reason = "deadline" if over_deadline else "depth"
            self.shed_by_reason[self.last_reason] = (
                self.shed_by_reason.get(self.last_reason, 0) + 1
            )
            if self.metrics is not None:
                self.metrics.inc(f"admission.shed.{self.last_reason}")
            return False
        self.n_admitted += 1
        self.last_reason = "ok"
        if self.metrics is not None:
            self.metrics.inc("admission.admitted")
        return True

    @property
    def shed_rate(self) -> float:
        offered = self.n_admitted + self.n_shed
        return self.n_shed / offered if offered else 0.0
