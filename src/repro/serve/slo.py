"""Service-level objectives, latency accounting, and admission control.

A serving tier is judged on its tail, not its mean: the SLO here is a p99
latency target plus an optional per-request deadline. Under overload an
unprotected queue grows without bound and *every* request misses; the
:class:`AdmissionController` sheds load at the front door instead, keeping
admitted requests inside the deadline at the price of an explicit shed
rate — the classic goodput-over-throughput trade.

Percentiles are computed with deterministic linear interpolation (no NumPy
percentile-method ambiguity), so reports are bit-stable run to run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShapeError


@dataclass(frozen=True)
class SLO:
    """The service-level objective of a deployment.

    ``p99_latency_s``: the reported tail target (attainment check);
    ``deadline_s``: the per-request latency bound admission control
    protects (defaults to the p99 target).
    """

    p99_latency_s: float
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.p99_latency_s <= 0:
            raise ShapeError(f"p99 target must be positive, got {self.p99_latency_s}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ShapeError(f"deadline must be positive, got {self.deadline_s}")

    @property
    def admission_deadline_s(self) -> float:
        return self.deadline_s if self.deadline_s is not None else self.p99_latency_s


def percentile(values: list[float], q: float) -> float:
    """Deterministic percentile with linear interpolation.

    ``q`` in [0, 100]; raises on an empty sample (a service report with no
    completions has no tail to state).
    """
    if not values:
        raise ShapeError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ShapeError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q / 100.0 * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class AdmissionController:
    """Front-door load shedding against a latency estimate and queue depth.

    A request is admitted unless

    * the projected latency (batching wait + queue backlog + service
      estimate, scaled by ``headroom``) exceeds the SLO's admission
      deadline, or
    * more than ``max_queue_depth`` admitted requests are already waiting
      (forming batches plus in-flight dispatches).

    ``headroom > 1`` sheds earlier (conservative), ``< 1`` later. The
    estimate intentionally uses only information available at arrival time
    — no peeking at future arrivals — so the same controller logic would
    run unchanged in a live deployment.
    """

    def __init__(
        self,
        slo: SLO,
        max_queue_depth: int | None = None,
        headroom: float = 1.0,
    ):
        if headroom <= 0:
            raise ShapeError(f"headroom must be positive, got {headroom}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ShapeError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        self.slo = slo
        self.max_queue_depth = max_queue_depth
        self.headroom = headroom
        self.n_admitted = 0
        self.n_shed = 0

    def admit(self, estimated_latency_s: float, queue_depth: int) -> bool:
        """Decide one arrival; updates the shed/admit counters."""
        over_deadline = (
            estimated_latency_s * self.headroom > self.slo.admission_deadline_s
        )
        over_depth = (
            self.max_queue_depth is not None and queue_depth >= self.max_queue_depth
        )
        if over_deadline or over_depth:
            self.n_shed += 1
            return False
        self.n_admitted += 1
        return True

    @property
    def shed_rate(self) -> float:
        offered = self.n_admitted + self.n_shed
        return self.n_shed / offered if offered else 0.0
