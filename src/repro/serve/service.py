"""The beamforming service: a discrete-event simulation of the serving tier.

:class:`BeamformingService` wires the pieces into one front door::

    arrivals -> admission control -> micro-batcher -> plan cache -> fleet

and replays a request trace event-by-event: at each arrival it first
flushes any batch whose latency trigger fired earlier, then decides
admission from an at-arrival latency estimate, then offers the request to
the batcher (a full batch dispatches immediately). Time is purely
simulated — batches are stamped with their trigger times, so lazy event
processing is exact — and every component is seeded/deterministic, making
whole service runs bit-reproducible.

The output is a :class:`ServiceReport`: per-request outcomes plus the
SLO-facing aggregates (p50/p95/p99 latency, throughput, goodput, shed
rate, batch-size and plan-cache statistics, per-device utilization).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError
from repro.gpusim.device import Device
from repro.serve.batching import Batch, BatchingPolicy, MicroBatcher
from repro.serve.cache import PlanCache
from repro.serve.dispatch import BatchExecution, FleetDispatcher
from repro.serve.slo import SLO, AdmissionController, percentile
from repro.serve.workload import Request

#: smoothing of the observed batch service time feeding admission control.
SERVICE_ESTIMATE_ALPHA = 0.3


@dataclass
class RequestOutcome:
    """Fate of one offered request."""

    request: Request
    admitted: bool
    batch_id: int | None = None
    completion_s: float | None = None
    output: np.ndarray | None = None

    @property
    def latency_s(self) -> float | None:
        if self.completion_s is None:
            return None
        return self.completion_s - self.request.arrival_s


@dataclass
class ServiceReport:
    """Aggregate outcome of one simulated service run."""

    outcomes: list[RequestOutcome]
    executions: list[BatchExecution]
    slo: SLO
    policy: BatchingPolicy
    n_devices: int
    shed_rate: float
    cache_hit_rate: float
    cache_misses: int
    utilizations: list[float] = field(default_factory=list)

    # -- request-level metrics ----------------------------------------------

    @property
    def n_offered(self) -> int:
        return len(self.outcomes)

    @property
    def n_admitted(self) -> int:
        return sum(1 for o in self.outcomes if o.admitted)

    @property
    def n_completed(self) -> int:
        return sum(1 for o in self.outcomes if o.completion_s is not None)

    @property
    def latencies_s(self) -> list[float]:
        return [o.latency_s for o in self.outcomes if o.latency_s is not None]

    def latency_percentile(self, q: float) -> float:
        lat = self.latencies_s
        return percentile(lat, q) if lat else 0.0

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_s(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def mean_latency_s(self) -> float:
        lat = self.latencies_s
        return sum(lat) / len(lat) if lat else 0.0

    @property
    def slo_attained(self) -> bool:
        """p99 of admitted requests within the target (and anything ran)."""
        return self.n_completed > 0 and self.p99_latency_s <= self.slo.p99_latency_s

    @property
    def deadline_miss_rate(self) -> float:
        """Completed requests beyond the admission deadline."""
        lat = self.latencies_s
        if not lat:
            return 0.0
        deadline = self.slo.admission_deadline_s
        return sum(1 for t in lat if t > deadline) / len(lat)

    # -- throughput -----------------------------------------------------------

    @property
    def span_s(self) -> float:
        """First arrival to last completion — the observation window."""
        if not self.outcomes:
            return 0.0
        first = min(o.request.arrival_s for o in self.outcomes)
        last = max((o.completion_s for o in self.outcomes if o.completion_s is not None),
                   default=first)
        return last - first

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of observed span."""
        span = self.span_s
        return self.n_completed / span if span > 0 else 0.0

    @property
    def goodput_rps(self) -> float:
        """Deadline-respecting completions per second of observed span."""
        span = self.span_s
        if span <= 0:
            return 0.0
        deadline = self.slo.admission_deadline_s
        good = sum(1 for t in self.latencies_s if t <= deadline)
        return good / span

    # -- batching -------------------------------------------------------------

    @property
    def n_batches(self) -> int:
        return len(self.executions)

    @property
    def mean_batch_size(self) -> float:
        if not self.executions:
            return 0.0
        return sum(e.batch.n_requests for e in self.executions) / len(self.executions)

    @property
    def max_batch_size(self) -> int:
        return max((e.batch.n_requests for e in self.executions), default=0)

    def summary(self) -> str:
        lines = [
            f"requests: {self.n_offered} offered, {self.n_admitted} admitted, "
            f"{self.n_completed} completed ({self.shed_rate:.1%} shed)",
            f"latency:  p50 {self.p50_latency_s * 1e3:.3f} ms, "
            f"p95 {self.p95_latency_s * 1e3:.3f} ms, "
            f"p99 {self.p99_latency_s * 1e3:.3f} ms "
            f"(SLO {self.slo.p99_latency_s * 1e3:.3f} ms: "
            f"{'attained' if self.slo_attained else 'MISSED'})",
            f"rate:     {self.throughput_rps:.0f} req/s throughput, "
            f"{self.goodput_rps:.0f} req/s goodput over {self.span_s * 1e3:.1f} ms",
            f"batching: {self.n_batches} launches, mean batch "
            f"{self.mean_batch_size:.1f} (max {self.max_batch_size}, "
            f"knob {self.policy.max_batch} / {self.policy.max_wait_s * 1e6:.0f} us)",
            f"plans:    {self.cache_hit_rate:.1%} cache hit rate "
            f"({self.cache_misses} builds)",
            f"fleet:    {self.n_devices} device(s), utilization "
            + ", ".join(f"{u:.1%}" for u in self.utilizations),
        ]
        return "\n".join(lines)


class BeamformingService:
    """The serving tier over a (simulated) device fleet.

    Parameters
    ----------
    devices:
        Homogeneous-mode fleet (dry-run for capacity studies, functional
        for end-to-end output checks).
    policy:
        Micro-batching knobs; ``max_batch=1`` is the naive baseline.
    slo:
        Latency objective; drives both reporting and admission control.
    admission:
        Optional pre-configured controller; by default one is built from
        ``slo`` with no depth cap.
    cache:
        Optional pre-warmed :class:`PlanCache` (shared across runs to model
        a long-lived server; by default each run starts cold).
    """

    def __init__(
        self,
        devices: list[Device],
        policy: BatchingPolicy | None = None,
        slo: SLO | None = None,
        admission: AdmissionController | None = None,
        cache: PlanCache | None = None,
    ):
        self.policy = policy if policy is not None else BatchingPolicy()
        self.slo = slo if slo is not None else SLO(p99_latency_s=10e-3)
        self.admission = (
            admission if admission is not None else AdmissionController(self.slo)
        )
        self.fleet = FleetDispatcher(devices, cache=cache)
        self._batcher = MicroBatcher(self.policy)
        self._ran = False
        #: EMA of observed batch service time (admission's service estimate).
        self._service_est_s = 0.0
        #: min-heap of (completion_s, n_requests) for in-flight depth.
        self._in_flight: list[tuple[float, int]] = []
        self._in_flight_requests = 0
        #: admitted-but-uncompleted outcomes, keyed by request identity
        #: (rids may collide across independently generated streams; see
        #: :func:`repro.serve.arrivals.merge_arrivals` for renumbering).
        self._pending_outcomes: dict[int, RequestOutcome] = {}

    # -- the event loop ------------------------------------------------------

    def run(self, requests: list[Request]) -> ServiceReport:
        """Replay one arrival trace through the service; returns the report.

        The trace is processed in arrival order (sorted copy; ties keep
        offered order). The returned outcomes follow the offered order, so
        reports line up with the input trace.

        One service instance replays one trace: worker queues, batcher
        counters, and report state are all trace-scoped. To model a warm
        long-lived server, construct a fresh service per trace and share a
        :class:`PlanCache` between them.
        """
        if self._ran:
            raise ShapeError(
                "BeamformingService.run is single-shot: construct a new "
                "service per trace (share a PlanCache to model a warm server)"
            )
        self._ran = True
        if len({id(r) for r in requests}) != len(requests):
            raise ShapeError(
                "the arrival trace offers the same Request object twice; "
                "generate distinct requests (merge_arrivals renumbers ids)"
            )
        slots = {id(r): i for i, r in enumerate(requests)}
        outcomes: list[RequestOutcome | None] = [None] * len(requests)
        for req in sorted(requests, key=lambda r: r.arrival_s):
            now = req.arrival_s
            self._flush_due(now)
            self._drain_completed(now)
            outcome = RequestOutcome(request=req, admitted=False)
            outcomes[slots[id(req)]] = outcome
            if not self.admission.admit(self._estimate_latency(now), self._depth()):
                continue
            outcome.admitted = True
            self._pending_outcomes[id(req)] = outcome
            full = self._batcher.offer(req, now)
            if full is not None:
                self._dispatch(full)
        for batch in self._batcher.flush_all():
            self._dispatch(batch)
        return ServiceReport(
            outcomes=outcomes,
            executions=list(self.fleet.executions),
            slo=self.slo,
            policy=self.policy,
            n_devices=len(self.fleet.workers),
            shed_rate=self.admission.shed_rate,
            cache_hit_rate=self.fleet.cache.hit_rate,
            cache_misses=self.fleet.cache.misses,
            utilizations=self.fleet.utilizations(),
        )

    # -- internals -----------------------------------------------------------

    def _flush_due(self, now: float) -> None:
        for batch in self._batcher.due(now):
            self._dispatch(batch)

    def _dispatch(self, batch: Batch) -> None:
        execution = self.fleet.dispatch(batch)
        heapq.heappush(
            self._in_flight, (execution.completion_s, batch.n_requests)
        )
        self._in_flight_requests += batch.n_requests
        observed = execution.completion_s - execution.start_s
        if self._service_est_s == 0.0:
            self._service_est_s = observed
        else:
            self._service_est_s += SERVICE_ESTIMATE_ALPHA * (
                observed - self._service_est_s
            )
        for i, req in enumerate(batch.requests):
            outcome = self._pending_outcomes.pop(id(req))
            outcome.batch_id = batch.bid
            outcome.completion_s = execution.completion_s
            if execution.outputs is not None:
                outcome.output = execution.outputs[i]

    def _drain_completed(self, now: float) -> None:
        while self._in_flight and self._in_flight[0][0] <= now:
            _, n = heapq.heappop(self._in_flight)
            self._in_flight_requests -= n

    def _depth(self) -> int:
        """Admitted requests waiting or in flight (admission's queue view)."""
        return self._batcher.depth() + self._in_flight_requests

    def _estimate_latency(self, now: float) -> float:
        """At-arrival latency projection for admission control.

        Worst-case batching wait plus the least-loaded worker's backlog
        plus the smoothed observed batch service time. Uses only
        information available at arrival — identical logic would run in a
        live front door.
        """
        backlog = self.fleet.least_loaded(now).backlog_s(now)
        return self.policy.max_wait_s + backlog + self._service_est_s
