"""The beamforming service: a discrete-event simulation of the serving tier.

:class:`BeamformingService` wires the pieces into one front door::

    arrivals -> placement -> admission -> micro-batcher -> priority scheduler -> fleet
                 (Placer)    control       (shape buckets)        |
                    |                                         plan cache
                    +-- route / merge / split / shed     (per-device segments)

and replays a request trace as a discrete-event simulation over four
event sources: request arrivals, batcher latency-trigger deadlines,
worker-availability instants, and — on elastic fleets — autoscaler
evaluation ticks (plus the retirement instants of draining workers).
Every arrival first receives an explicit
:class:`~repro.serve.placement.PlacementDecision`: requests no capable
device can run are shed at the door; oversized requests become in-service
splits across several workers; nearby shapes merge into shape buckets;
everything else routes to the cost-model-preferred worker. Admission then
projects the arrival's latency from *per-device predicted service times*
(the placer's cost model — not an observed global EMA), the work queued at
its class and above, and the best eligible worker's backlog. Time is
purely simulated and every component is seeded/deterministic, making whole
service runs bit-reproducible.

The output is a :class:`ServiceReport`: per-request outcomes plus the
SLO-facing aggregates (p50/p95/p99 latency, throughput, goodput, shed
rate, batch/plan-cache/placement statistics, per-device utilization), each
also broken out per priority class and per tenant via
:class:`~repro.serve.slo.SLOTracker`.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError
from repro.gpusim.device import Device
from repro.serve.autoscale import Autoscaler, FleetSignals, ScaleEvent
from repro.serve.batching import BatchingPolicy, MicroBatcher
from repro.serve.cache import PlanCache
from repro.serve.dispatch import BatchExecution, DeviceWorker, FleetDispatcher
from repro.serve.faults import FaultEvent, FaultKind, FaultPlan, ResiliencePolicy
from repro.serve.obs.critical_path import BlameReport, RequestPath, attribute, blame
from repro.serve.obs.events import (
    AdmissionDecided,
    HedgeLaunched,
    HedgeResolved,
    PlacementDecided,
    RequestArrived,
    RequestCompleted,
    RequestFailed,
    RequestRetried,
    ScaleApplied,
    ShardRecovered,
    StageCompleted,
    StageStarted,
    WorkerCrashed,
    WorkerSlowed,
)
from repro.serve.obs.alerts import Alert
from repro.serve.obs.metrics import MetricsRegistry
from repro.serve.obs.monitor import ServiceMonitor
from repro.serve.obs.trace import NULL_RECORDER, NullRecorder
from repro.serve.placement import PlacementDecision, PlacementKind, Placer
from repro.serve.scheduler import PriorityScheduler
from repro.serve.slo import (
    SLO,
    AdmissionController,
    ClassStats,
    FleetTimeline,
    SLOTracker,
    percentile,
)
from repro.serve.workload import Request


@dataclass(frozen=True)
class StageLink:
    """One stage on a completed pipeline request's gating chain.

    ``arrival_s`` is when the stage was released (the source stage's is the
    request's own arrival) and ``completion_s`` when its launch finished;
    consecutive links telescope — each link's release *is* its gating
    dependency's completion — so per-stage latency segments sum bit-exactly
    to the end-to-end latency (see
    :mod:`repro.serve.obs.critical_path`).
    """

    stage: str
    batch_id: int
    arrival_s: float
    completion_s: float


@dataclass
class RequestOutcome:
    """Fate of one offered request.

    For a multi-stage pipeline request, ``completion_s`` is the *last*
    stage's completion and ``batch_id`` that stage's batch;
    ``stage_chain`` records the gating chain source -> final for
    cross-stage critical-path blame (empty for single-kernel requests and
    one-stage pipelines).
    """

    request: Request
    admitted: bool
    batch_id: int | None = None
    completion_s: float | None = None
    output: np.ndarray | None = None
    stage_chain: tuple[StageLink, ...] = ()

    @property
    def latency_s(self) -> float | None:
        if self.completion_s is None:
            return None
        return self.completion_s - self.request.arrival_s


@dataclass
class _PipelineRun:
    """In-flight bookkeeping of one admitted multi-stage pipeline request."""

    root: Request
    #: per completed stage: its gating-chain link record.
    completed: dict[str, StageLink] = field(default_factory=dict)
    #: worker indices each completed stage's output buffer resides on.
    residency: dict[str, tuple[int, ...]] = field(default_factory=dict)
    #: stages released so far (source from admission; successors on dep
    #: completion) — guards against double-release under diamond topologies.
    released: set[str] = field(default_factory=set)


@dataclass
class _PendingExecution:
    """One dispatched-but-unconfirmed launch (fault-injected runs only).

    Under fault injection the service defers completion bookkeeping until
    the simulation clock actually reaches the launch's completion — a
    crash in between revokes the work. ``hedge`` is the optional duplicate
    launch racing the primary; the effective completion is whichever
    finishes first.
    """

    execution: BatchExecution
    seq: int
    hedge: BatchExecution | None = None

    @property
    def completion_s(self) -> float:
        t = self.execution.completion_s
        if self.hedge is not None and self.hedge.completion_s < t:
            t = self.hedge.completion_s
        return t


@dataclass
class ServiceReport:
    """Aggregate outcome of one simulated service run."""

    outcomes: list[RequestOutcome]
    executions: list[BatchExecution]
    slo: SLO
    policy: BatchingPolicy
    n_devices: int
    shed_rate: float
    cache_hit_rate: float
    cache_misses: int
    utilizations: list[float] = field(default_factory=list)
    #: catalog names of the fleet's devices, worker-index order.
    device_names: list[str] = field(default_factory=list)
    #: ingress placement decision counts by kind ("route"/"merge"/...).
    placements: dict[str, int] = field(default_factory=dict)
    #: applied fleet changes, in time order (empty for fixed fleets).
    scale_events: list[ScaleEvent] = field(default_factory=list)
    #: step function of the fleet's size over the run.
    fleet_timeline: FleetTimeline | None = None
    #: per-worker plan-cache story: (worker index, device, hits, misses).
    cache_by_worker: list[tuple[int, str, int, int]] = field(default_factory=list)
    #: the run's metrics registry (``None`` for hand-built reports).
    metrics: MetricsRegistry | None = None
    #: the run's service monitor (``None`` for unmonitored runs).
    monitor: ServiceMonitor | None = None
    #: per-worker provisioned windows ``(joined_s, end_s)``, worker-index
    #: order; ``end_s`` is retirement or the run's makespan.
    worker_spans: list[tuple[float, float]] = field(default_factory=list)
    #: injected worker crashes the run absorbed (0 for fault-free runs).
    n_crashes: int = 0
    #: lost requests re-placed and re-submitted by the recovery layer.
    n_retries: int = 0
    #: duplicate launches hedged against stragglers (and how many won).
    n_hedges: int = 0
    n_hedge_wins: int = 0
    #: lost shards of split requests re-executed on surviving workers.
    n_shard_recoveries: int = 0
    #: compute seconds that served no completed request: hedge losers plus
    #: work burned on crashed workers — the honest bill of resilience.
    wasted_device_seconds: float = 0.0

    # -- request-level metrics ----------------------------------------------

    @property
    def n_offered(self) -> int:
        return len(self.outcomes)

    @property
    def n_admitted(self) -> int:
        return sum(1 for o in self.outcomes if o.admitted)

    @property
    def n_completed(self) -> int:
        return sum(1 for o in self.outcomes if o.completion_s is not None)

    @property
    def n_failed(self) -> int:
        """Admitted requests the service lost (crash, retries exhausted)."""
        return self.n_admitted - self.n_completed

    @property
    def availability(self) -> float:
        """Completed fraction of admitted requests (1.0 when none offered).

        The resilience headline: admission already charged the shed rate,
        so this isolates what the service *accepted and then lost* — a
        fault-free run is 100% available by construction.
        """
        return self.n_completed / self.n_admitted if self.n_admitted else 1.0

    @property
    def latencies_s(self) -> list[float]:
        return [o.latency_s for o in self.outcomes if o.latency_s is not None]

    def latency_percentile(self, q: float) -> float:
        lat = self.latencies_s
        return percentile(lat, q) if lat else 0.0

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_s(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def mean_latency_s(self) -> float:
        lat = self.latencies_s
        return sum(lat) / len(lat) if lat else 0.0

    @property
    def slo_attained(self) -> bool:
        """p99 of admitted requests within the target (and anything ran)."""
        return self.n_completed > 0 and self.p99_latency_s <= self.slo.p99_latency_s

    @property
    def deadline_miss_rate(self) -> float:
        """Completed requests beyond the admission deadline."""
        lat = self.latencies_s
        if not lat:
            return 0.0
        deadline = self.slo.admission_deadline_s
        return sum(1 for t in lat if t > deadline) / len(lat)

    # -- throughput -----------------------------------------------------------

    @property
    def span_s(self) -> float:
        """First arrival to last completion — the observation window."""
        if not self.outcomes:
            return 0.0
        first = min(o.request.arrival_s for o in self.outcomes)
        last = max((o.completion_s for o in self.outcomes if o.completion_s is not None),
                   default=first)
        return last - first

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of observed span."""
        span = self.span_s
        return self.n_completed / span if span > 0 else 0.0

    @property
    def goodput_rps(self) -> float:
        """Deadline-respecting completions per second of observed span."""
        span = self.span_s
        if span <= 0:
            return 0.0
        deadline = self.slo.admission_deadline_s
        good = sum(1 for t in self.latencies_s if t <= deadline)
        return good / span

    # -- batching -------------------------------------------------------------

    @property
    def n_batches(self) -> int:
        return len(self.executions)

    @property
    def mean_batch_size(self) -> float:
        if not self.executions:
            return 0.0
        return sum(e.batch.n_requests for e in self.executions) / len(self.executions)

    @property
    def max_batch_size(self) -> int:
        return max((e.batch.n_requests for e in self.executions), default=0)

    # -- placement ------------------------------------------------------------

    @property
    def n_split_batches(self) -> int:
        """Launches served by in-service sharding across several workers."""
        return sum(1 for e in self.executions if e.is_split)

    @property
    def padded_ops_fraction(self) -> float:
        """Shape-bucket padding overhead: padded GEMM ops / useful ops.

        0.0 for exact-shape batching; the explicit price paid for merging
        nearby shapes into fewer, fuller launches.
        """
        useful = sum(e.batch.useful_ops for e in self.executions)
        if useful <= 0:
            return 0.0
        return sum(e.batch.padded_ops for e in self.executions) / useful

    def by_worker(self) -> list[dict]:
        """Per-worker placement totals: device, batches, requests, busy share.

        Split placements count one launch on every shard worker; their
        requests are attributed to the first (largest-extent) shard worker.
        """
        stats = [
            {"device": name, "batches": 0, "requests": 0, "utilization": util}
            for name, util in zip(self.device_names, self.utilizations)
        ]
        for e in self.executions:
            parts = e.shards if e.is_split else [e]
            for part in parts:
                stats[part.worker_index]["batches"] += 1
            owner = parts[0].worker_index
            stats[owner]["requests"] += e.batch.n_requests
        return stats

    # -- elastic fleets -------------------------------------------------------

    @property
    def makespan_s(self) -> float:
        """Completion of the last launch — the device-seconds horizon."""
        return max((e.completion_s for e in self.executions), default=0.0)

    @property
    def n_scale_ups(self) -> int:
        return sum(1 for e in self.scale_events if e.kind == "up")

    @property
    def n_scale_downs(self) -> int:
        return sum(1 for e in self.scale_events if e.kind == "down")

    @property
    def peak_fleet_size(self) -> int:
        """Peak *provisioned* size — same cost basis as
        :attr:`device_seconds` and :attr:`mean_fleet_size`, so the three
        compose (a draining worker still bills until retirement)."""
        if self.fleet_timeline is None:
            return self.n_devices
        return self.fleet_timeline.peak_provisioned

    @property
    def device_seconds(self) -> float:
        """Provisioned device-time the run consumed (the cost axis).

        Elastic and fixed fleets are only comparable at equal
        device-seconds — more capacity always buys a better tail.
        """
        if self.fleet_timeline is None:
            return self.n_devices * self.makespan_s
        return self.fleet_timeline.device_seconds(self.makespan_s)

    @property
    def mean_fleet_size(self) -> float:
        if self.fleet_timeline is None:
            return float(self.n_devices)
        return self.fleet_timeline.mean_size(self.makespan_s)

    @property
    def cold_start_requests(self) -> int:
        """Requests served in launches that paid a one-time plan build.

        The honest cold-start bill of an elastic fleet: every scaled-up
        worker's first batches fault their plans in, and those requests
        carry the build on their critical path. (Fixed fleets pay this
        once per workload at trace start.)
        """
        return sum(e.batch.n_requests for e in self.executions if e.build_s > 0)

    # -- per-class / per-tenant breakdowns ------------------------------------

    def slo_tracker(self) -> SLOTracker:
        """The per-(class, tenant) tracker over the outcomes.

        Built once and cached — outcomes are immutable after the run, and
        summary/bench paths ask for several breakdowns of the same report.
        """
        tracker = getattr(self, "_tracker", None)
        if tracker is None:
            tracker = SLOTracker(self.slo)
            for o in self.outcomes:
                tracker.record(
                    priority=o.request.workload.priority,
                    tenant=o.request.workload.tenant,
                    admitted=o.admitted,
                    latency_s=o.latency_s,
                )
            self._tracker = tracker
        return tracker

    def by_priority(self) -> list[ClassStats]:
        """Latency/goodput/shed statistics per priority class (urgent first)."""
        return self.slo_tracker().by_priority(self.span_s)

    def by_tenant(self) -> list[ClassStats]:
        """Latency/goodput/shed statistics per tenant (first-seen order)."""
        return self.slo_tracker().by_tenant(self.span_s)

    def shed_share(self, priority: int) -> float:
        """Fraction of all shed requests that came from one priority class."""
        return self.slo_tracker().shed_share(priority)

    # -- critical-path attribution --------------------------------------------

    def request_paths(self) -> list[RequestPath]:
        """Every completed request's latency, decomposed along its critical
        path (see :mod:`repro.serve.obs.critical_path`). Cached — the
        executions are immutable after the run."""
        paths = getattr(self, "_paths", None)
        if paths is None:
            paths = attribute(self.outcomes, self.executions)
            self._paths = paths
        return paths

    def blame(self, q: float = 99.0) -> BlameReport | None:
        """Per-segment blame over the ``q``-th-percentile tail cohort."""
        return blame(self.request_paths(), q)

    # -- monitoring -----------------------------------------------------------

    def alerts(self) -> list[Alert]:
        """Every burn-rate alert the run's monitor raised (creation order).

        Empty for unmonitored runs — monitoring is opt-in the same way
        tracing is.
        """
        if self.monitor is None:
            return []
        return list(self.monitor.engine.history)

    def worker_busy_fractions(self) -> list[float]:
        """Per-worker compute-busy fraction over each worker's own window.

        Busy time is the sum of the worker's compute-engine spans
        (shard-level for splits); the window is the worker's provisioned
        span from :attr:`worker_spans` — a late joiner or early retiree is
        judged only over the time it actually existed, unlike
        :attr:`utilizations`' shared-makespan denominator.
        """
        if not self.worker_spans:
            return []
        busy = [0.0] * len(self.worker_spans)
        for e in self.executions:
            parts = e.shards if e.is_split else [e]
            for part in parts:
                busy[part.worker_index] += part.completion_s - part.compute_start_s
        fractions = []
        for (start_s, end_s), busy_s in zip(self.worker_spans, busy):
            window = end_s - start_s
            fractions.append(busy_s / window if window > 0 else 0.0)
        return fractions

    def summary(self) -> str:
        lines = [
            f"requests: {self.n_offered} offered, {self.n_admitted} admitted, "
            f"{self.n_completed} completed ({self.shed_rate:.1%} shed)",
            f"latency:  p50 {self.p50_latency_s * 1e3:.3f} ms, "
            f"p95 {self.p95_latency_s * 1e3:.3f} ms, "
            f"p99 {self.p99_latency_s * 1e3:.3f} ms "
            f"(SLO {self.slo.p99_latency_s * 1e3:.3f} ms: "
            f"{'attained' if self.slo_attained else 'MISSED'})",
            f"rate:     {self.throughput_rps:.0f} req/s throughput, "
            f"{self.goodput_rps:.0f} req/s goodput over {self.span_s * 1e3:.1f} ms",
            f"batching: {self.n_batches} launches, mean batch "
            f"{self.mean_batch_size:.1f} (max {self.max_batch_size}, "
            f"knob {self.policy.max_batch} / {self.policy.max_wait_s * 1e6:.0f} us)",
            f"plans:    {self.cache_hit_rate:.1%} cache hit rate "
            f"({self.cache_misses} builds)"
            + (
                " — "
                + ", ".join(
                    f"worker{index}/{device} {hits}h/{misses}b"
                    for index, device, hits, misses in self.cache_by_worker
                )
                if self.cache_by_worker
                else ""
            ),
            f"fleet:    {self.n_devices} device(s) "
            f"[{', '.join(self.device_names)}], utilization "
            + ", ".join(f"{u:.1%}" for u in self.utilizations),
        ]
        busy = self.worker_busy_fractions()
        if busy:
            lines.append(
                "busy:     "
                + ", ".join(
                    f"worker{i}/{device} {fraction:.1%}"
                    for i, (device, fraction) in enumerate(zip(self.device_names, busy))
                )
                + " (compute-busy over each worker's provisioned window)"
            )
        if self.scale_events:
            lines.append(
                f"scaling:  {self.n_scale_ups} up / {self.n_scale_downs} down "
                f"(peak {self.peak_fleet_size} workers, mean "
                f"{self.mean_fleet_size:.2f}, "
                f"{self.device_seconds * 1e3:.2f} device-ms, "
                f"{self.cold_start_requests} cold-start requests)"
            )
        if self.n_crashes or self.n_retries or self.n_hedges or self.n_failed:
            lines.append(
                f"faults:   {self.availability:.3%} available "
                f"({self.n_failed} lost), {self.n_crashes} crashes, "
                f"{self.n_retries} retries, {self.n_hedges} hedges "
                f"({self.n_hedge_wins} won), "
                f"{self.n_shard_recoveries} shard recoveries, "
                f"{self.wasted_device_seconds * 1e3:.3f} wasted device-ms"
            )
        if self.placements:
            parts = [f"{kind} {n}" for kind, n in sorted(self.placements.items())]
            extras = []
            if self.n_split_batches:
                extras.append(f"{self.n_split_batches} sharded launches")
            if self.padded_ops_fraction > 0:
                extras.append(f"{self.padded_ops_fraction:.1%} padded ops")
            suffix = f" ({'; '.join(extras)})" if extras else ""
            lines.append("placing:  " + ", ".join(parts) + suffix)
        if self.n_completed > 0:
            tail = self.blame()
            if tail is not None:
                lines.append("blame:    " + tail.summary())
        classes = self.by_priority()
        tenants = self.by_tenant()
        if len(classes) > 1 or len(tenants) > 1:
            for stats in classes + (tenants if len(tenants) > 1 else []):
                lines.append(
                    f"  [{stats.label}] {stats.n_offered} offered, "
                    f"{stats.n_completed} completed, p99 "
                    f"{stats.p99_latency_s * 1e3:.3f} ms, "
                    f"{stats.shed_rate:.1%} shed "
                    f"({stats.shed_share:.1%} of all shedding)"
                )
        if self.monitor is not None:
            engine = self.monitor.engine
            lines.append(
                f"alerts:   {engine.count('firing')} fired, "
                f"{engine.count('resolved')} resolved, "
                f"{engine.count('cancelled')} cancelled "
                f"(objective {engine.objective:.2%} in-deadline, "
                f"{self.monitor.sampler.n_ticks} samples)"
            )
            for alert in engine.history:
                marks = [f"pending {alert.pending_s * 1e3:.3f} ms"]
                if alert.firing_s is not None:
                    marks.append(f"fired {alert.firing_s * 1e3:.3f} ms")
                if alert.resolved_s is not None:
                    marks.append(f"resolved {alert.resolved_s * 1e3:.3f} ms")
                if alert.cancelled_s is not None:
                    marks.append(f"cancelled {alert.cancelled_s * 1e3:.3f} ms")
                lines.append(
                    f"  [{alert.aid}] "
                    + ", ".join(marks)
                    + f", peak burn {alert.peak_burn:.1f}x"
                )
        if self.metrics is not None:
            rendered = self.metrics.render()
            if rendered:
                lines.append("metrics:")
                lines.extend("  " + line for line in rendered.splitlines())
        return "\n".join(lines)


class BeamformingService:
    """The serving tier over a (simulated) device fleet.

    Parameters
    ----------
    devices:
        The fleet — device models may be mixed (heterogeneous fleets are
        the placement layer's point); only the execution mode (dry-run vs
        functional) must be uniform.
    policy:
        Micro-batching knobs; ``max_batch=1`` is the naive baseline, and
        ``sample_buckets`` enables shape-bucket pad-and-merge.
    slo:
        Latency objective; drives both reporting and admission control.
    admission:
        Optional pre-configured controller; by default one is built from
        ``slo`` with no depth cap.
    cache:
        Optional pre-warmed :class:`PlanCache` (shared across runs to model
        a long-lived server; by default each run starts cold).
    class_policies:
        Per-priority-class :class:`BatchingPolicy` overrides — e.g. a tight
        ``max_wait_s`` for the interactive class 0, a deep ``max_batch``
        for a throughput class 1. Classes not listed use ``policy``.
    tenant_weights:
        Deficit-round-robin weights for tenants sharing the fleet
        (default 1.0 each); see :class:`~repro.serve.scheduler.PriorityScheduler`.
    preemptive:
        ``False`` disables priority/weighted-fair ordering (global FIFO);
        queued batches then dispatch strictly in flush order.
    placer:
        Optional pre-configured :class:`~repro.serve.placement.Placer`
        (e.g. a custom memory fraction); by default one is built with
        defaults and bound to the fleet.
    autoscaler:
        Optional :class:`~repro.serve.autoscale.Autoscaler`: the fleet
        becomes elastic, with the autoscaler's ticks merged into the event
        loop as a fourth event source. ``devices`` is then the seed fleet
        and the scale-down floor. ``None`` (default) keeps the fleet
        fixed.
    monitor:
        Optional :class:`~repro.serve.obs.monitor.ServiceMonitor`: its
        sampler ticks are caught up ahead of every event (a pure-read
        fifth event source — sampling never perturbs the simulation) and
        its alert engine is fed every shed/completion verdict. ``None``
        (default) does no monitoring work at all, the same zero-overhead
        discipline as the trace recorder.
    faults:
        Optional :class:`~repro.serve.faults.FaultPlan`: a deterministic
        schedule of worker crashes, transient slowdowns, and replacements
        merged into the loop as one more event source. A crash is a
        non-graceful drain — in-flight work on the worker is *lost* and
        handed to the recovery layer. ``None`` (or an empty plan) keeps
        the legacy code paths exactly: completion bookkeeping stays
        eager, and every golden replays byte-identically.
    resilience:
        The :class:`~repro.serve.faults.ResiliencePolicy` absorbing the
        fault plan: per-class retry budgets with deadline-aware
        re-placement, hedged dispatch past the straggler threshold, shard
        recovery, and plan-cache re-warm on replacements. Defaults to the
        policy's defaults; only consulted when ``faults`` is active.
    """

    def __init__(
        self,
        devices: list[Device],
        policy: BatchingPolicy | None = None,
        slo: SLO | None = None,
        admission: AdmissionController | None = None,
        cache: PlanCache | None = None,
        class_policies: dict[int, BatchingPolicy] | None = None,
        tenant_weights: dict[str, float] | None = None,
        preemptive: bool = True,
        placer: Placer | None = None,
        autoscaler: Autoscaler | None = None,
        recorder: NullRecorder | None = None,
        metrics: MetricsRegistry | None = None,
        monitor: ServiceMonitor | None = None,
        faults: FaultPlan | None = None,
        resilience: ResiliencePolicy | None = None,
    ):
        self.policy = policy if policy is not None else BatchingPolicy()
        self.slo = slo if slo is not None else SLO(p99_latency_s=10e-3)
        self.admission = admission if admission is not None else AdmissionController(self.slo)
        #: span-event recorder; the default NULL_RECORDER keeps every
        #: emission site behind a false ``enabled`` flag (zero overhead,
        #: bit-identical goldens). Pass a TraceRecorder to capture the run.
        self.recorder = NULL_RECORDER if recorder is None else recorder
        #: the run's metrics registry; always live (deterministic counters),
        #: shared with every component below and attached to the report.
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self.fleet = FleetDispatcher(
            devices,
            cache=cache,
            scheduler=PriorityScheduler(
                tenant_weights=tenant_weights, preemptive=preemptive
            ),
            placer=placer,
        )
        self.fleet.bind_obs(self.recorder, self.metrics)
        self.admission.metrics = self.metrics
        self._batcher = MicroBatcher(self.policy, class_policies=class_policies)
        self._batcher.recorder = self.recorder
        self._batcher.metrics = self.metrics
        # Retirement guard: a draining worker that is the last one capable
        # of a workload still forming in the batcher must outlive the flush.
        self.fleet.forming_workloads = self._batcher.forming_workloads
        self._autoscaler = autoscaler
        if autoscaler is not None:
            autoscaler.metrics = self.metrics
        self._monitor = monitor
        if monitor is not None:
            monitor.bind(self.recorder, self.metrics, self.slo.admission_deadline_s)
        self._scale_events: list[ScaleEvent] = []
        self._timeline = FleetTimeline()
        self._ran = False
        #: min-heap of (completion_s, n_requests) for in-flight depth.
        self._in_flight: list[tuple[float, int]] = []
        self._in_flight_requests = 0
        #: admitted-but-uncompleted outcomes, keyed by request identity
        #: (rids may collide across independently generated streams; see
        #: :func:`repro.serve.arrivals.merge_arrivals` for renumbering).
        self._pending_outcomes: dict[int, RequestOutcome] = {}
        #: in-flight multi-stage pipeline requests, keyed by root identity.
        self._pipeline_runs: dict[int, _PipelineRun] = {}
        #: min-heap of (release_s, seq, Request): successor stages whose
        #: dependencies have completed, waiting for the clock to reach the
        #: release instant — the pipeline event source.
        self._stage_heap: list[tuple[float, int, Request]] = []
        self._stage_seq = 0
        #: the fault schedule; ``None`` (also for empty plans) keeps every
        #: legacy code path — the zero-overhead-when-disabled discipline.
        self._faults = faults if faults is not None and len(faults.events) > 0 else None
        self._resilience = resilience if resilience is not None else ResiliencePolicy()
        self._fault_idx = 0
        #: dispatched-but-unconfirmed launches (fault-injected runs only).
        self._pending: list[_PendingExecution] = []
        self._pending_seq = 0
        #: retry attempts so far, keyed by request identity.
        self._attempts: dict[int, int] = {}
        #: most recent workloads, for plan re-warm on replacement workers.
        self._recent_workloads: OrderedDict[str, tuple] = OrderedDict()
        #: the fleet's execution mode, for constructing replacement devices.
        self._device_mode = devices[0].mode
        self._n_crashes = 0
        self._n_retries = 0
        self._n_hedges = 0
        self._n_hedge_wins = 0
        self._n_shard_recoveries = 0
        self._wasted_s = 0.0

    # -- the event loop ------------------------------------------------------

    def run(self, requests: list[Request]) -> ServiceReport:
        """Replay one arrival trace through the service; returns the report.

        The trace is processed as a merged event stream — arrivals, batcher
        deadlines, and worker-availability instants, in time order with
        deterministic tie-breaking (deadline flushes before a simultaneous
        arrival; dispatch follows every event). The returned outcomes
        follow the offered order, so reports line up with the input trace.

        One service instance replays one trace: worker queues, batcher
        counters, and report state are all trace-scoped. To model a warm
        long-lived server, construct a fresh service per trace and share a
        :class:`PlanCache` between them.
        """
        if self._ran:
            raise ShapeError(
                "BeamformingService.run is single-shot: construct a new "
                "service per trace (share a PlanCache to model a warm server)"
            )
        self._ran = True
        if len({id(r) for r in requests}) != len(requests):
            raise ShapeError(
                "the arrival trace offers the same Request object twice; "
                "generate distinct requests (merge_arrivals renumbers ids)"
            )
        if self.fleet.is_functional and any(r.is_pipeline_stage for r in requests):
            raise ShapeError(
                "multi-stage pipeline workloads are dry-run only: functional "
                "execution of inter-stage buffers is not modelled yet "
                "(single-stage pipelines run functionally like bare workloads)"
            )
        slots = {id(r): i for i, r in enumerate(requests)}
        outcomes: list[RequestOutcome | None] = [None] * len(requests)
        trace = sorted(requests, key=lambda r: r.arrival_s)
        idx = 0
        self._record_fleet(0.0)
        while True:
            t_arrival = trace[idx].arrival_s if idx < len(trace) else None
            t_deadline = self._batcher.next_deadline()
            t_worker = self.fleet.next_accept_s() if self.fleet.has_queued() else None
            t_retire = self.fleet.next_retire_s()
            t_scale = (
                self._autoscaler.next_tick_s()
                if self._autoscaler is not None and self._scaling_live(idx, trace)
                else None
            )
            t_confirm = self._next_confirm_s() if self._faults is not None else None
            t_fault = self._next_fault_s(idx, trace) if self._faults is not None else None
            t_stage = self._stage_heap[0][0] if self._stage_heap else None
            times = [
                t
                for t in (t_arrival, t_deadline, t_worker, t_retire, t_scale,
                          t_confirm, t_fault, t_stage)
                if t is not None
            ]
            if not times:
                break
            now = min(times)
            if self._monitor is not None:
                # Catch the monitor up *before* this event's handler: every
                # pending sampler tick <= now fires (oldest first), each a
                # pure read of service state — sample, evaluate alerts,
                # emit trace/metrics. Ticks never dispatch or drain, so a
                # monitored run replays bit-identically to an unmonitored
                # one, and ticks only advance while real events remain, so
                # the loop still terminates.
                self._monitor.advance(now, self)
            if t_confirm is not None and t_confirm <= now:
                # Confirm completions *before* a simultaneous fault: work
                # whose completion instant has been reached survives a
                # crash at the same instant.
                self._confirm(now)
            elif t_fault is not None and t_fault <= now:
                self._handle_fault(now)
            elif t_stage is not None and t_stage <= now:
                # Release successor stages *before* a simultaneous batcher
                # flush, so a stage released at the flush instant can still
                # join that flush's batches.
                self._release_stages(now)
            elif t_deadline is not None and t_deadline <= now:
                for batch in self._batcher.due(now):
                    self.fleet.submit(batch)
            elif t_retire is not None and t_retire <= now:
                # A drained worker is idle and unreferenced: retire it
                # before anything else sees this instant, so placement and
                # reports never observe a zombie.
                self._reap(now)
            elif t_scale is not None and t_scale <= now:
                self._scale_tick(now)
            elif t_arrival is not None and t_arrival <= now:
                req = trace[idx]
                idx += 1
                self._drain_completed(now)
                outcome = RequestOutcome(request=req, admitted=False)
                outcomes[slots[id(req)]] = outcome
                priority = req.workload.priority
                if self.recorder.enabled:
                    self.recorder.emit(
                        RequestArrived(
                            t_s=now,
                            rid=req.rid,
                            workload=req.workload.name,
                            priority=priority,
                            tenant=req.workload.tenant,
                        )
                    )
                decision = self.fleet.placer.place(req.workload, self._batcher.policy_for(priority))
                if self.recorder.enabled:
                    self.recorder.emit(self._placement_event(now, req, decision))
                projected = self._estimate_latency(
                    now, decision, pipeline=req.pipeline if req.is_pipeline_stage else None
                )
                depth = self._depth()
                admitted = self.admission.admit(projected, depth, priority=priority)
                if self.recorder.enabled:
                    reason = decision.reason if decision.is_shed else self.admission.last_reason
                    self.recorder.emit(
                        AdmissionDecided(
                            t_s=now,
                            rid=req.rid,
                            admitted=admitted,
                            projected_s=projected,
                            queue_depth=depth,
                            priority=priority,
                            reason=reason,
                        )
                    )
                if self._monitor is not None and not admitted:
                    self._monitor.observe_shed(now, priority, req.workload.tenant)
                if admitted:
                    outcome.admitted = True
                    self._pending_outcomes[id(req)] = outcome
                    if req.is_pipeline_stage:
                        run = _PipelineRun(root=req)
                        run.released.add(req.stage)
                        self._pipeline_runs[id(req)] = run
                        self.metrics.inc("service.stage_released")
                        if self.recorder.enabled:
                            self.recorder.emit(
                                StageStarted(
                                    t_s=now,
                                    rid=req.rid,
                                    pipeline=req.pipeline.name,
                                    stage=req.stage,
                                    stage_index=req.pipeline.stage_index(req.stage),
                                )
                            )
                    if decision.kind is PlacementKind.SPLIT:
                        # Oversized requests never coalesce: straight to the
                        # scheduler as their own batch, sharded at dispatch.
                        self.fleet.submit(
                            self._batcher.singleton(req, now, decision=decision)
                        )
                    else:
                        full = self._batcher.offer(req, now, decision=decision)
                        if full is not None:
                            self.fleet.submit(full)
            # A worker-availability event needs no handler of its own: the
            # drain below dispatches everything placeable at this instant.
            for execution in self.fleet.drain(now):
                if self._faults is None:
                    self._settle(execution)
                else:
                    self._register(execution, now)
        makespan = max((e.completion_s for e in self.fleet.executions), default=0.0)
        if self._monitor is not None:
            # Sample the drain tail too: arrivals have stopped but in-flight
            # work is still completing, and alerts raised at the last peak
            # should get their chance to resolve on the time axis.
            self._monitor.advance(makespan, self)
        cache_by_worker = [
            (w.index, w.device.name, *self.fleet.cache.segment_stats(w.device))
            for w in self.fleet.all_workers
        ]
        for index, _, hits, misses in cache_by_worker:
            self.metrics.counter(f"cache.worker{index}.hits").inc(hits)
            self.metrics.counter(f"cache.worker{index}.misses").inc(misses)
        return ServiceReport(
            outcomes=outcomes,
            executions=list(self.fleet.executions),
            slo=self.slo,
            policy=self.policy,
            n_devices=len(self.fleet.all_workers),
            shed_rate=self.admission.shed_rate,
            cache_hit_rate=self.fleet.cache.hit_rate,
            cache_misses=self.fleet.cache.misses,
            utilizations=self.fleet.utilizations(),
            device_names=[w.device.name for w in self.fleet.all_workers],
            placements=dict(self.fleet.placer.decisions),
            scale_events=list(self._scale_events),
            fleet_timeline=self._timeline,
            cache_by_worker=cache_by_worker,
            metrics=self.metrics,
            monitor=self._monitor,
            worker_spans=[
                (w.joined_s, w.retired_s if w.retired_s is not None else makespan)
                for w in self.fleet.all_workers
            ],
            n_crashes=self._n_crashes,
            n_retries=self._n_retries,
            n_hedges=self._n_hedges,
            n_hedge_wins=self._n_hedge_wins,
            n_shard_recoveries=self._n_shard_recoveries,
            wasted_device_seconds=self._wasted_s,
        )

    # -- the fourth event source: autoscaling --------------------------------

    def _scaling_live(self, idx: int, trace: list[Request]) -> bool:
        """Whether autoscale ticks should keep firing.

        Ticks run only while arrivals remain: scale decisions exist for
        traffic, and ticking through the end-of-trace drain would both
        produce artificial tail actions (a cold worker for the last
        half-formed batch) and keep the event loop from terminating.
        Retirement of already-draining workers has its own event source.
        """
        return idx < len(trace)

    def _scale_tick(self, now: float) -> None:
        signals = self._signals(now)
        events = self._autoscaler.tick(now, self.fleet, signals)
        if events:
            self._scale_events.extend(events)
            if self.recorder.enabled:
                for event in events:
                    self.recorder.emit(self._scale_span(event))
            self._record_fleet(now)

    def _reap(self, now: float) -> None:
        for worker in self.fleet.reap(now):
            event = ScaleEvent(
                t_s=now,
                kind="retire",
                worker_index=worker.index,
                device_name=worker.device.name,
                accepting=len(self.fleet.accepting_workers),
                provisioned=len(self.fleet.workers),
                reason="drain complete",
            )
            self._scale_events.append(event)
            self.metrics.inc("autoscale.retire")
            if self.recorder.enabled:
                self.recorder.emit(self._scale_span(event))
        self._record_fleet(now)

    @staticmethod
    def _scale_span(event: ScaleEvent) -> ScaleApplied:
        """One applied :class:`ScaleEvent`, re-shaped as a trace event."""
        return ScaleApplied(
            t_s=event.t_s,
            kind=event.kind,
            worker_index=event.worker_index,
            device=event.device_name,
            accepting=event.accepting,
            provisioned=event.provisioned,
            reason=event.reason,
        )

    def _record_fleet(self, now: float) -> None:
        accepting = len(self.fleet.accepting_workers)
        provisioned = len(self.fleet.workers)
        self.metrics.set_gauge("fleet.accepting", accepting)
        self.metrics.set_gauge("fleet.provisioned", provisioned)
        self._timeline.record(now, accepting, provisioned)

    def _signals(self, now: float) -> FleetSignals:
        """Snapshot the pressure signals one autoscale tick consumes.

        ``firing_alerts`` feeds burn-rate alert state to the autoscaler:
        when a monitor is attached, every alert currently in the firing
        state counts — budget burn as a scale-up signal, not just queue
        pressure (opt-in on the policy side via
        :attr:`ReactiveAutoscaler.alert_burn_up
        <repro.serve.autoscale.ReactiveAutoscaler.alert_burn_up>`).
        """
        pressure = self.fleet.queued_pressure_by_class()
        accepting = self.fleet.accepting_workers
        firing = 0
        if self._monitor is not None:
            firing = sum(
                1 for a in self._monitor.engine.history if a.state == "firing"
            )
        return FleetSignals(
            t_s=now,
            n_accepting=len(accepting),
            n_draining=len(self.fleet.workers) - len(accepting),
            queued_requests=sum(p.n_requests for p in pressure.values()),
            queued_service_s=sum(p.service_s for p in pressure.values()),
            pressure_by_priority=pressure,
            drain_s_by_capability=self.fleet.queued_drain_by_capability(),
            busy_workers=sum(1 for w in accepting if w.backlog_s(now) > 0),
            firing_alerts=firing,
        )

    # -- internals -----------------------------------------------------------

    def _settle(self, execution: BatchExecution) -> None:
        """Bookkeeping for one placed batch: outcomes and in-flight depth.

        The fault-free fast path: completion is *eager* (the execution's
        future completion instant is trusted at dispatch), which is exact
        when nothing can revoke in-flight work. Fault-injected runs go
        through :meth:`_register`/:meth:`_confirm` instead.
        """
        batch = execution.batch
        heapq.heappush(self._in_flight, (execution.completion_s, batch.n_requests))
        self._in_flight_requests += batch.n_requests
        self._complete(execution)

    def _complete(self, execution: BatchExecution) -> None:
        """Stamp every request of one finished launch: the completion edge.

        Multi-stage pipeline requests divert to :meth:`_stage_complete`:
        a finished launch completes one *stage*, releasing successors; the
        end-to-end outcome is only stamped when the last stage finishes.
        """
        batch = execution.batch
        for i, req in enumerate(batch.requests):
            if req.is_pipeline_stage:
                self._stage_complete(req, execution)
                continue
            outcome = self._pending_outcomes.pop(id(req))
            outcome.batch_id = batch.bid
            outcome.completion_s = execution.completion_s
            if execution.outputs is not None:
                outcome.output = execution.outputs[i]
            latency = execution.completion_s - req.arrival_s
            self.metrics.inc("service.completed")
            self.metrics.observe("service.latency_ms", latency * 1e3)
            if self._monitor is not None:
                self._monitor.observe_completion(
                    execution.completion_s,
                    req.workload.priority,
                    req.workload.tenant,
                    latency,
                )
            if self.recorder.enabled:
                self.recorder.emit(
                    RequestCompleted(
                        t_s=execution.completion_s,
                        rid=req.rid,
                        bid=batch.bid,
                        latency_s=latency,
                        tenant=batch.tenant,
                        priority=batch.priority,
                    )
                )

    # -- pipeline stage lifecycle --------------------------------------------

    def _stage_complete(self, req: Request, execution: BatchExecution) -> None:
        """One stage of one pipeline request finished its batched launch.

        Records the stage's completion (and where its output buffer now
        resides), releases every successor whose dependencies are all
        complete — onto the stage heap at the gating dependency's
        completion instant, a proper future event under eager settling —
        and finalizes the end-to-end outcome once all stages have run.
        """
        run = self._pipeline_runs.get(id(req.root_request))
        if run is None:
            return  # the root already failed on another branch
        pipeline = req.pipeline
        run.completed[req.stage] = StageLink(
            stage=req.stage,
            batch_id=execution.batch.bid,
            arrival_s=req.arrival_s,
            completion_s=execution.completion_s,
        )
        run.residency[req.stage] = (execution.worker_index,)
        self.metrics.inc("service.stage_completed")
        if self.recorder.enabled:
            self.recorder.emit(
                StageCompleted(
                    t_s=execution.completion_s,
                    rid=req.rid,
                    pipeline=pipeline.name,
                    stage=req.stage,
                    stage_index=pipeline.stage_index(req.stage),
                    bid=execution.batch.bid,
                )
            )
        for stage in pipeline.successors(req.stage):
            if stage.name in run.released:
                continue
            deps = [run.completed.get(d) for d in stage.depends_on]
            if any(link is None for link in deps):
                continue
            release_s = max(link.completion_s for link in deps)
            run.released.add(stage.name)
            resident = tuple(
                sorted({w for d in stage.depends_on for w in run.residency[d]})
            )
            successor = Request(
                rid=req.root_request.rid,
                workload=stage.workload,
                arrival_s=release_s,
                pipeline=pipeline,
                stage=stage.name,
                root=req.root_request,
                resident_workers=resident,
                stage_input_bytes=pipeline.stage_input_bytes(stage.name),
            )
            heapq.heappush(self._stage_heap, (release_s, self._stage_seq, successor))
            self._stage_seq += 1
        if len(run.completed) == pipeline.n_stages:
            self._finish_pipeline(run)

    def _release_stages(self, now: float) -> None:
        """Feed every stage whose release instant the clock reached.

        The pipeline event source's handler: released stages skip admission
        (the root was admitted end-to-end at arrival) and enter the same
        placement -> batcher -> scheduler path an arrival takes, so
        same-stage requests of *different* pipeline arrivals coalesce into
        shared launches exactly like ordinary requests.
        """
        while self._stage_heap and self._stage_heap[0][0] <= now:
            _, _, req = heapq.heappop(self._stage_heap)
            run = self._pipeline_runs.get(id(req.root_request))
            if run is None:
                continue  # the root failed while this release was pending
            priority = req.workload.priority
            self.metrics.inc("service.stage_released")
            if self.recorder.enabled:
                stage = req.pipeline.stage(req.stage)
                self.recorder.emit(
                    StageStarted(
                        t_s=now,
                        rid=req.rid,
                        pipeline=req.pipeline.name,
                        stage=req.stage,
                        stage_index=req.pipeline.stage_index(req.stage),
                        dep_indices=tuple(
                            req.pipeline.stage_index(d) for d in stage.depends_on
                        ),
                    )
                )
            decision = self.fleet.placer.place(
                req.workload, self._batcher.policy_for(priority)
            )
            if decision.is_shed:
                # Mid-pipeline infeasibility (e.g. the only capable worker
                # crashed since admission): the whole request fails.
                self._fail(req, now, "no_capable_worker")
                continue
            if decision.kind is PlacementKind.SPLIT:
                self.fleet.submit(self._batcher.singleton(req, now, decision=decision))
            else:
                full = self._batcher.offer(req, now, decision=decision)
                if full is not None:
                    self.fleet.submit(full)

    def _finish_pipeline(self, run: _PipelineRun) -> None:
        """All stages of one pipeline request ran: stamp the e2e outcome.

        The outcome's completion is the last sink's; the gating chain is
        reconstructed by walking back from that sink through, at each
        stage, the dependency whose completion gated the release (ties
        break on topological index for replay determinism).
        """
        root = run.root
        pipeline = root.pipeline
        final = max(
            (run.completed[s.name] for s in pipeline.sinks),
            key=lambda link: (link.completion_s, pipeline.stage_index(link.stage)),
        )
        chain = [final]
        while True:
            deps = pipeline.stage(chain[0].stage).depends_on
            if not deps:
                break
            gating = max(
                (run.completed[d] for d in deps),
                key=lambda link: (link.completion_s, pipeline.stage_index(link.stage)),
            )
            chain.insert(0, gating)
        outcome = self._pending_outcomes.pop(id(root))
        outcome.batch_id = final.batch_id
        outcome.completion_s = final.completion_s
        outcome.stage_chain = tuple(chain)
        del self._pipeline_runs[id(root)]
        latency = final.completion_s - root.arrival_s
        self.metrics.inc("service.completed")
        self.metrics.observe("service.latency_ms", latency * 1e3)
        if self._monitor is not None:
            self._monitor.observe_completion(
                final.completion_s,
                root.workload.priority,
                root.workload.tenant,
                latency,
            )
        if self.recorder.enabled:
            self.recorder.emit(
                RequestCompleted(
                    t_s=final.completion_s,
                    rid=root.rid,
                    bid=final.batch_id,
                    latency_s=latency,
                    tenant=root.workload.tenant,
                    priority=root.workload.priority,
                )
            )

    def _placement_event(self, now: float, req: Request, decision: PlacementDecision):
        """The :class:`PlacementDecided` span of one arrival (traced runs).

        ``costs`` lists every capable worker's predicted steady-state
        service time for the decision's workload — the alternatives the
        cost model weighed — in worker-index order. Estimates are memoized
        and pure (:meth:`Placer.estimate`), so pricing them for the trace
        cannot perturb the simulation.
        """
        placer = self.fleet.placer
        if decision.is_shed:
            chosen, costs = float("inf"), ()
        elif decision.kind is PlacementKind.SPLIT:
            chosen, costs = placer.predicted_split_service_s(decision), ()
        else:
            costs = tuple(
                sorted(
                    (w.index, placer.estimate(w, decision.workload, 1).service_s)
                    for w in placer.capable_workers(decision.workload)
                )
            )
            chosen = min((service_s for _, service_s in costs), default=float("inf"))
        return PlacementDecided(
            t_s=now,
            rid=req.rid,
            kind=decision.kind.value,
            workload=decision.workload.name,
            chosen_s=chosen,
            costs=costs,
            shed_reason=decision.reason,
        )

    def _drain_completed(self, now: float) -> None:
        while self._in_flight and self._in_flight[0][0] <= now:
            _, n = heapq.heappop(self._in_flight)
            self._in_flight_requests -= n

    @property
    def in_flight(self) -> list[tuple[float, int]]:
        """Scheduled-but-uncompleted ``(completion_s, n_requests)`` pairs."""
        if self._faults is not None:
            return sorted(
                (p.completion_s, p.execution.batch.n_requests) for p in self._pending
            )
        return self._in_flight

    # -- fault injection and recovery ----------------------------------------

    def _next_confirm_s(self) -> float | None:
        """Earliest effective completion among unconfirmed launches."""
        return min((p.completion_s for p in self._pending), default=None)

    def _next_fault_s(self, idx: int, trace: list[Request]) -> float | None:
        """The fault plan's next event instant, while the run is live.

        Faults stop firing once arrivals, queued work, and in-flight work
        are all exhausted — injecting into a finished run would only
        produce phantom replacements and keep the loop from terminating.
        """
        if self._fault_idx >= len(self._faults.events):
            return None
        if (
            idx >= len(trace)
            and not self._pending
            and not self._stage_heap
            and not self.fleet.has_queued()
        ):
            return None
        return self._faults.events[self._fault_idx].t_s

    def _register(self, execution: BatchExecution, now: float) -> None:
        """Track one placed launch until the clock confirms its completion.

        The fault-mode replacement for eager :meth:`_settle`: outcomes are
        only stamped when the completion instant is actually reached
        (:meth:`_confirm`), because a crash in between revokes the work.
        Also the hedged-dispatch hook: a batch landing on a worker at or
        past the straggler threshold gets a duplicate launch on the best
        healthy candidate, first completion wins.
        """
        batch = execution.batch
        pending = _PendingExecution(execution=execution, seq=self._pending_seq)
        self._pending_seq += 1
        self._pending.append(pending)
        self._in_flight_requests += batch.n_requests
        self._note_recent(batch)
        threshold = self._resilience.hedge_slow_threshold
        if not execution.is_split and threshold != float("inf"):
            primary = self.fleet.worker_by_index(execution.worker_index)
            if primary.slow_factor >= threshold:
                alt = self._hedge_worker(batch, execution.worker_index, now)
                if alt is not None:
                    pending.hedge = self.fleet.hedge(execution, alt, now)
                    self._n_hedges += 1
                    self.metrics.inc("service.hedges")
                    if self.recorder.enabled:
                        self.recorder.emit(
                            HedgeLaunched(
                                t_s=now,
                                bid=batch.bid,
                                primary_index=execution.worker_index,
                                hedge_index=alt.index,
                                primary_completion_s=execution.completion_s,
                                hedge_completion_s=pending.hedge.completion_s,
                            )
                        )

    def _hedge_worker(self, batch, primary_index: int, now: float) -> DeviceWorker | None:
        """Best healthy candidate to duplicate one batch on, or ``None``."""
        threshold = self._resilience.hedge_slow_threshold
        best = None
        for index in batch.candidate_indices or ():
            if index == primary_index:
                continue
            try:
                worker = self.fleet.worker_by_index(index)
            except StopIteration:
                continue  # crashed since the candidates were stamped
            if worker.retired_s is not None or worker.slow_factor >= threshold:
                continue
            key = (worker.backlog_s(now), worker.index)
            if best is None or key < best[0]:
                best = (key, worker)
        return None if best is None else best[1]

    def _confirm(self, now: float) -> None:
        """Finalize every pending launch whose completion the clock reached.

        Hedged launches resolve here: the earlier completion wins (ties go
        to the primary), the loser is cancelled on its worker and its
        burned compute billed to wasted-device-seconds.
        """
        due = [p for p in self._pending if p.completion_s <= now]
        due.sort(key=lambda p: (p.completion_s, p.seq))
        for pending in due:
            self._pending.remove(pending)
            winner = pending.execution
            self._in_flight_requests -= winner.batch.n_requests
            if pending.hedge is not None:
                hedge = pending.hedge
                if hedge.completion_s < winner.completion_s:
                    slot = self.fleet.executions.index(winner)
                    self.fleet.executions[slot] = hedge
                    winner, loser, who = hedge, winner, "hedge"
                    self._n_hedge_wins += 1
                else:
                    loser, who = hedge, "primary"
                wasted = self.fleet.worker_by_index(loser.worker_index).cancel_tail(
                    loser, now
                )
                self._wasted_s += wasted
                self.metrics.inc("service.hedge_resolved")
                if self.recorder.enabled:
                    self.recorder.emit(
                        HedgeResolved(
                            t_s=now, bid=winner.batch.bid, winner=who, wasted_s=wasted
                        )
                    )
            self._complete(winner)

    def _handle_fault(self, now: float) -> None:
        """Apply the fault plan's next event (exactly one per loop turn)."""
        event = self._faults.events[self._fault_idx]
        self._fault_idx += 1
        if event.kind is FaultKind.CRASH:
            self._crash(event, now)
        elif event.kind is FaultKind.SLOW_START:
            self._slow(event, now, event.factor)
        elif event.kind is FaultKind.SLOW_END:
            self._slow(event, now, 1.0)
        elif event.kind is FaultKind.REPLACE:
            self._replace(event, now)

    def _slow(self, event: FaultEvent, now: float, factor: float) -> None:
        """Set (or reset) one worker's straggler factor."""
        try:
            worker = self.fleet.worker_by_index(event.worker_index)
        except StopIteration:
            return  # the target crashed or retired before this window
        worker.slow_factor = factor
        if factor != 1.0:
            self.metrics.inc("service.slowdowns")
        if self.recorder.enabled:
            self.recorder.emit(
                WorkerSlowed(
                    t_s=now,
                    worker_index=worker.index,
                    device=worker.device.name,
                    factor=factor,
                )
            )

    def _crash(self, event: FaultEvent, now: float) -> None:
        """One worker leaves non-gracefully; recover or fail its work.

        In-flight work on the dead worker is revoked: split shards
        re-execute on surviving capable workers (the rest of the split
        stands), hedged batches promote their surviving duplicate, and
        everything else goes through the per-request retry/fail path.
        Queued batches the crash stranded (committed splits, workloads
        with no capable worker left) are displaced and retried too.
        """
        try:
            self.fleet.worker_by_index(event.worker_index)
        except StopIteration:
            return  # already gone (flapping plans may name a worker twice)
        dead, displaced = self.fleet.crash(event.worker_index, now)
        index = dead.index
        self._n_crashes += 1
        self.metrics.inc("service.crashes")
        lost_batches = 0
        lost_requests = 0
        keep: list[_PendingExecution] = []
        for pending in self._pending:
            execution = pending.execution
            if pending.hedge is not None and pending.hedge.worker_index == index:
                # The duplicate died with the worker; the primary carries on.
                self._wasted_s += dead.revoke(pending.hedge, now)
                pending.hedge = None
            if execution.is_split:
                lost = [
                    i
                    for i, s in enumerate(execution.shards)
                    if s.worker_index == index and s.completion_s > now
                ]
                if lost and not self._recover_shards(execution, lost, dead, now):
                    lost_batches += 1
                    lost_requests += execution.batch.n_requests
                    self._in_flight_requests -= execution.batch.n_requests
                    self.fleet.executions.remove(execution)
                    for shard in execution.shards:
                        if shard.worker_index == index:
                            self._wasted_s += dead.revoke(shard, now)
                        elif shard.completion_s > now:
                            self._wasted_s += shard.gemm_s
                    self._abandon(execution.batch, now)
                    continue
                keep.append(pending)
            elif execution.worker_index == index:
                self._wasted_s += dead.revoke(execution, now)
                if pending.hedge is not None:
                    # The race resolves by force majeure: the hedge wins.
                    slot = self.fleet.executions.index(execution)
                    self.fleet.executions[slot] = pending.hedge
                    pending.execution = pending.hedge
                    pending.hedge = None
                    self._n_hedge_wins += 1
                    if self.recorder.enabled:
                        self.recorder.emit(
                            HedgeResolved(
                                t_s=now,
                                bid=execution.batch.bid,
                                winner="hedge",
                                wasted_s=0.0,
                            )
                        )
                    keep.append(pending)
                else:
                    lost_batches += 1
                    lost_requests += execution.batch.n_requests
                    self._in_flight_requests -= execution.batch.n_requests
                    self.fleet.executions.remove(execution)
                    self._abandon(execution.batch, now)
            else:
                keep.append(pending)
        self._pending = keep
        for batch in displaced:
            lost_batches += 1
            lost_requests += batch.n_requests
            self._abandon(batch, now)
        scale_event = ScaleEvent(
            t_s=now,
            kind="crash",
            worker_index=index,
            device_name=dead.device.name,
            accepting=len(self.fleet.accepting_workers),
            provisioned=len(self.fleet.workers),
            reason="injected crash",
        )
        self._scale_events.append(scale_event)
        if self.recorder.enabled:
            self.recorder.emit(self._scale_span(scale_event))
            self.recorder.emit(
                WorkerCrashed(
                    t_s=now,
                    worker_index=index,
                    device=dead.device.name,
                    lost_batches=lost_batches,
                    lost_requests=lost_requests,
                )
            )
        self._record_fleet(now)

    def _recover_shards(
        self,
        execution: BatchExecution,
        lost: list[int],
        dead: DeviceWorker,
        now: float,
    ) -> bool:
        """Re-execute the lost shards of one split; ``False`` = unrecoverable."""
        if not self._resilience.recover_shards:
            return False
        batch = execution.batch
        for shard_index in lost:
            extent = batch.decision.shard_extents[shard_index]
            shard_workload = batch.workload.shard(extent)
            candidates = [
                w
                for w in self.fleet.workers
                if shard_workload.supported_by(w.device.spec)
            ]
            if not candidates:
                return False
            self._wasted_s += dead.revoke(execution.shards[shard_index], now)
            worker = min(candidates, key=lambda w: (w.backlog_s(now), w.index))
            redo = self.fleet.recover_shard(execution, shard_index, worker, now)
            self._n_shard_recoveries += 1
            self.metrics.inc("service.shard_recoveries")
            if self.recorder.enabled:
                self.recorder.emit(
                    ShardRecovered(
                        t_s=now,
                        bid=batch.bid,
                        shard_index=shard_index,
                        from_index=dead.index,
                        to_index=worker.index,
                        completion_s=redo.completion_s,
                    )
                )
        return True

    def _replace(self, event: FaultEvent, now: float) -> None:
        """A replacement worker joins the fleet (cold cache, startup delay).

        With ``rewarm_plans`` enabled, the most recent workloads' plans
        build *before* the worker takes traffic — serialized onto its copy
        engine, so the warm-up is paid by the replacement's own timeline
        rather than by its first unlucky batches.
        """
        device = Device(event.device_name, mode=self._device_mode)
        worker = self.fleet.add_worker(device, now, ready_s=now + event.startup_s)
        if self._resilience.rewarm_plans and self._recent_workloads:
            build_total = 0.0
            for workload, n_requests in self._recent_workloads.values():
                if not workload.supported_by(device.spec):
                    continue
                _, build_s = self.fleet.cache.get(device, workload, n_requests)
                build_total += build_s
            worker._copy_free_s += build_total
        scale_event = ScaleEvent(
            t_s=now,
            kind="replace",
            worker_index=worker.index,
            device_name=device.name,
            accepting=len(self.fleet.accepting_workers),
            provisioned=len(self.fleet.workers),
            reason="crash replacement",
        )
        self._scale_events.append(scale_event)
        self.metrics.inc("service.replacements")
        if self.recorder.enabled:
            self.recorder.emit(self._scale_span(scale_event))
        self._record_fleet(now)

    def _note_recent(self, batch) -> None:
        """Track the trailing workload mix, for replacement-worker re-warm."""
        limit = self._resilience.rewarm_limit
        if not self._resilience.rewarm_plans or limit <= 0:
            return
        key = batch.workload.name
        self._recent_workloads[key] = (batch.workload, batch.n_requests)
        self._recent_workloads.move_to_end(key)
        while len(self._recent_workloads) > limit:
            self._recent_workloads.popitem(last=False)

    def _abandon(self, batch, now: float) -> None:
        """Send every request of one revoked batch through retry-or-fail."""
        for req in batch.requests:
            self._retry_or_fail(req, now)

    def _retry_or_fail(self, req: Request, now: float) -> None:
        """Deadline-aware re-placement of one lost request, or failure.

        A retry re-enters the placer for a *fresh* decision on the
        post-crash fleet (the original route may name a dead worker) and
        is only submitted when the projected finish fits inside
        ``retry_deadline_factor`` times the admission deadline — a doomed
        launch wastes capacity the surviving fleet needs. A lost pipeline
        *stage* retries as itself — re-entering the pipeline at the failed
        stage, with completed predecessors standing — while the deadline
        clock runs from the *root* arrival (end-to-end, not per stage).
        """
        policy = self._resilience
        priority = req.workload.priority
        attempts = self._attempts.get(id(req), 0)
        budget = policy.budget(priority)
        if attempts >= budget:
            self._fail(req, now, "retries_exhausted")
            return
        decision = self.fleet.placer.place(
            req.workload, self._batcher.policy_for(priority)
        )
        if decision.is_shed:
            self._fail(req, now, "no_capable_worker")
            return
        projected = self._estimate_latency(now, decision)
        elapsed = now - req.root_request.arrival_s
        deadline = policy.retry_deadline_factor * self.slo.admission_deadline_s
        if elapsed + projected > deadline:
            self._fail(req, now, "deadline")
            return
        self._attempts[id(req)] = attempts + 1
        self._n_retries += 1
        self.metrics.inc("service.retries")
        if self.recorder.enabled:
            self.recorder.emit(
                RequestRetried(
                    t_s=now,
                    rid=req.rid,
                    attempt=attempts + 1,
                    budget=budget,
                    priority=priority,
                    tenant=req.workload.tenant,
                )
            )
        self.fleet.submit(self._batcher.singleton(req, now, decision=decision))

    def _fail(self, req: Request, now: float, reason: str) -> None:
        """Abandon one admitted request: the failure end of its lifecycle.

        The outcome stays admitted with no completion — the report's
        availability denominator counts it against the service. Failures
        feed the monitor as budget-bad verdicts, so crash storms drive
        burn-rate alerts exactly like shed storms do. A failed pipeline
        *stage* fails its whole request: the bookkeeping is keyed through
        the root arrival, and completed sibling branches are discarded.
        """
        root = req.root_request
        self._pending_outcomes.pop(id(root), None)
        self._pipeline_runs.pop(id(root), None)
        self.metrics.inc("service.failed")
        priority = req.workload.priority
        if self._monitor is not None:
            self._monitor.observe_failure(now, priority, req.workload.tenant)
        if self.recorder.enabled:
            self.recorder.emit(
                RequestFailed(
                    t_s=now,
                    rid=req.rid,
                    reason=reason,
                    priority=priority,
                    tenant=req.workload.tenant,
                )
            )

    def queued_requests(self) -> int:
        """Admitted requests waiting to dispatch (batcher + scheduler + held)."""
        return (
            self._batcher.depth()
            + self.fleet.scheduler.depth_requests()
            + self.fleet.held_requests
        )

    def _depth(self) -> int:
        """Admitted requests waiting or in flight (admission's queue view)."""
        return self.queued_requests() + self._in_flight_requests

    def _estimate_latency(
        self,
        now: float,
        decision: PlacementDecision,
        pipeline=None,
    ) -> float:
        """At-arrival, class-aware latency projection for admission control.

        Built entirely from the placer's per-device cost model — no
        observed EMA: the request's own class batching wait, plus the best
        eligible worker's backlog (the in-flight work even a preemptor must
        wait out), plus the predicted drain of every batch queued at its
        class or above (each priced at its own best device, spread over the
        workers this request may use), plus the predicted service time of
        its own launch on the best device. Uses only information available
        at arrival — identical logic would run in a live front door — and
        still sheds the lowest class first: its projection includes every
        queue, the most urgent class's includes almost none. Shed-kind
        decisions (no capable device / cannot fit even sharded) project an
        infinite latency, so the admission controller rejects them at the
        door with the shed accounted to the request's class.
        """
        if decision.is_shed:
            return float("inf")
        placer = self.fleet.placer
        priority = decision.workload.priority
        if decision.kind is PlacementKind.SPLIT:
            # A split waits for *all* its shard workers.
            backlog = max(
                self.fleet.worker_by_index(i).backlog_s(now)
                for i in decision.shard_worker_indices
            )
            own_service = placer.predicted_split_service_s(decision)
            batching_wait = 0.0
            n_usable = len(decision.shard_worker_indices)
        else:
            candidates = placer.eligible_workers(
                decision.workload
            ) or placer.capable_workers(decision.workload)
            backlog = min(w.backlog_s(now) for w in candidates)
            own_service = placer.predicted_service_s(decision.workload, 1)
            batching_wait = self._batcher.policy_for(priority).max_wait_s
            n_usable = len(candidates)
        # Undispatched work lives in two places: the scheduler's queues and
        # the dispatcher's held list — both count, or held capability-bound
        # work would be invisible to admission exactly when its one device
        # is saturated.
        queue_drain = (
            self.fleet.scheduler.queued_service_s(priority)
            + self.fleet.held_service_s(priority)
        ) / n_usable
        projected = batching_wait + backlog + queue_drain + own_service
        if pipeline is not None:
            # End-to-end admission for a multi-stage arrival: every
            # downstream stage adds at least its own best-device launch.
            # Queueing and transfer along the chain show up in the SLO,
            # not the projection — admission stays optimistic the same way
            # it is for single-kernel requests; a downstream stage with no
            # capable worker projects inf and sheds at the door.
            for name in pipeline.topo_order[1:]:
                projected += placer.predicted_service_s(pipeline.stage(name).workload, 1)
        return projected
