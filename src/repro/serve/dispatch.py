"""Fleet dispatch: route merged batches across per-device queues.

Each device gets a :class:`DeviceWorker` modelling the two engines the
streaming tier already distinguishes (:mod:`repro.tcbf.streaming`): a copy
engine running the stage-in kernels (transpose + packing) and a compute
engine running the GEMM. Consecutive batches on one worker overlap exactly
like consecutive blocks in a :class:`~repro.tcbf.streaming.BlockExecutor` —
the stage-in of batch *i+1* hides behind the GEMM of batch *i* — so the
service inherits the library's copy/compute overlap for free.

:class:`FleetDispatcher` is the routing layer: least-loaded (earliest
compute-engine drain) with deterministic index-order tie-breaking, the
sharding counterpart of :class:`~repro.tcbf.sharding.ShardedBeamformer` for
many small independent problems instead of one large one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError, ShapeError
from repro.gpusim.device import Device
from repro.serve.batching import Batch
from repro.serve.cache import CachedPlan, PlanCache
from repro.tcbf import merge_batch_operands, split_batched_output


@dataclass
class BatchExecution:
    """One dispatched batch on the fleet timeline."""

    batch: Batch
    device_name: str
    worker_index: int
    #: when the batch left the batcher.
    ready_s: float
    #: copy-engine start (after queueing and any one-time plan build).
    start_s: float
    compute_start_s: float
    completion_s: float
    stage_in_s: float
    gemm_s: float
    #: one-time plan-build latency charged to this batch (cache miss only).
    build_s: float
    #: per-request output blocks (functional fleets; ``None`` on dry-run).
    outputs: list[np.ndarray] | None = None

    @property
    def queue_delay_s(self) -> float:
        """Time the batch waited for the worker (excludes batching delay)."""
        return self.start_s - self.ready_s

    @property
    def service_s(self) -> float:
        return self.completion_s - self.start_s


class DeviceWorker:
    """One device's in-order queue with copy/compute engine overlap."""

    def __init__(self, device: Device, index: int):
        self.device = device
        self.index = index
        self._copy_free_s = 0.0
        self._compute_free_s = 0.0
        #: accumulated compute-engine busy time (utilization numerator).
        self.busy_s = 0.0
        self.n_batches = 0
        self.n_requests = 0

    def backlog_s(self, now: float) -> float:
        """Seconds of queued compute ahead of a batch arriving now."""
        return max(self._compute_free_s - now, 0.0)

    def schedule(
        self, batch: Batch, entry: CachedPlan, build_s: float
    ) -> BatchExecution:
        """Place one batch on this worker's engines; returns its timeline.

        The one-time plan build serializes ahead of the batch's stage-in on
        the copy engine (a cold plan cannot stage data); the GEMM starts
        once its stage-in and the previous GEMM are both done — the same
        event model as :func:`repro.tcbf.streaming.pipelined_makespan`.
        """
        start = max(batch.formed_s, self._copy_free_s)
        copy_end = start + build_s + entry.stage_in_s
        compute_start = max(copy_end, self._compute_free_s)
        completion = compute_start + entry.gemm_s
        self._copy_free_s = copy_end
        self._compute_free_s = completion
        self.busy_s += entry.gemm_s
        self.n_batches += 1
        self.n_requests += batch.n_requests
        return BatchExecution(
            batch=batch,
            device_name=self.device.name,
            worker_index=self.index,
            ready_s=batch.formed_s,
            start_s=start,
            compute_start_s=compute_start,
            completion_s=completion,
            stage_in_s=entry.stage_in_s,
            gemm_s=entry.gemm_s,
            build_s=build_s,
        )

    def utilization(self, makespan_s: float) -> float:
        """Compute-engine busy fraction over the simulated horizon."""
        return self.busy_s / makespan_s if makespan_s > 0 else 0.0


class FleetDispatcher:
    """Least-loaded routing of batches over a homogeneous-mode fleet."""

    def __init__(self, devices: list[Device], cache: PlanCache | None = None):
        if not devices:
            raise ShapeError("fleet dispatch requires at least one device")
        if len({d.is_functional for d in devices}) > 1:
            raise DeviceError(
                "fleet devices must share one execution mode; "
                "got a mix of functional and dry-run"
            )
        self.workers = [DeviceWorker(d, i) for i, d in enumerate(devices)]
        self.cache = cache if cache is not None else PlanCache()
        self.executions: list[BatchExecution] = []

    @property
    def is_functional(self) -> bool:
        return self.workers[0].device.is_functional

    def least_loaded(self, now: float) -> DeviceWorker:
        """Worker whose compute engine drains first (ties: lowest index)."""
        return min(self.workers, key=lambda w: (w.backlog_s(now), w.index))

    def dispatch(self, batch: Batch) -> BatchExecution:
        """Route one batch: pick a worker, fault in the plan, schedule.

        Functional fleets additionally execute the merged block for real —
        the shared weight set repeats per request, the request data blocks
        concatenate along the batch axis, and the output scatters back one
        slice per request (:func:`repro.tcbf.split_batched_output`).
        """
        worker = self.least_loaded(batch.formed_s)
        entry, build_s = self.cache.get(worker.device, batch.workload, batch.n_requests)
        execution = worker.schedule(batch, entry, build_s)
        if self.is_functional:
            execution.outputs = self._execute(batch, entry)
        self.executions.append(execution)
        return execution

    def _execute(self, batch: Batch, entry: CachedPlan) -> list[np.ndarray]:
        workload = batch.workload
        if workload.weights is None:
            raise ShapeError(
                f"functional dispatch of {workload.name!r} requires the "
                "workload to carry its weight set"
            )
        blocks = [req.data for req in batch.requests]
        if any(b is None for b in blocks):
            raise ShapeError(
                f"functional dispatch of {workload.name!r} requires every "
                "request to carry a data block"
            )
        weights, data = merge_batch_operands(workload.weights, blocks)
        result = entry.plan.execute(weights, data)
        return split_batched_output(
            result.output, [workload.batch_per_request] * batch.n_requests
        )

    # -- aggregate statistics ------------------------------------------------

    def makespan_s(self) -> float:
        """Completion time of the last batch (0 when nothing ran)."""
        return max((e.completion_s for e in self.executions), default=0.0)

    def utilizations(self, makespan_s: float | None = None) -> list[float]:
        span = self.makespan_s() if makespan_s is None else makespan_s
        return [w.utilization(span) for w in self.workers]
