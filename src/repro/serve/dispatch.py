"""Fleet dispatch: route merged batches across per-device queues.

Each device gets a :class:`DeviceWorker` modelling the two engines the
streaming tier already distinguishes (:mod:`repro.tcbf.streaming`): a copy
engine running the stage-in kernels (transpose + packing) and a compute
engine running the GEMM. Consecutive batches on one worker overlap exactly
like consecutive blocks in a :class:`~repro.tcbf.streaming.BlockExecutor` —
the stage-in of batch *i+1* hides behind the GEMM of batch *i* — so the
service inherits the library's copy/compute overlap for free.

:class:`FleetDispatcher` is the routing layer: least-loaded (earliest
compute-engine drain) with deterministic index-order tie-breaking, the
sharding counterpart of :class:`~repro.tcbf.sharding.ShardedBeamformer` for
many small independent problems instead of one large one.

Two dispatch paths coexist:

* :meth:`FleetDispatcher.dispatch` — immediate placement, FIFO in call
  order (the pre-priority model, still used for direct fleet studies);
* :meth:`FleetDispatcher.submit` + :meth:`FleetDispatcher.drain` — batches
  wait in a :class:`~repro.serve.scheduler.PriorityScheduler` and reach a
  worker only when its pipeline can actually accept one (the previous
  batch's GEMM has started). Keeping the wait in the scheduler instead of
  on the worker is what makes priorities real: a high-priority batch jumps
  everything still queued, while each worker keeps at most one staged batch
  so copy/compute overlap is preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError, ShapeError
from repro.gpusim.device import Device
from repro.serve.batching import Batch
from repro.serve.cache import CachedPlan, PlanCache
from repro.serve.scheduler import PriorityScheduler
from repro.tcbf import merge_batch_operands, split_batched_output


@dataclass
class BatchExecution:
    """One dispatched batch on the fleet timeline."""

    batch: Batch
    device_name: str
    worker_index: int
    #: when the batch left the batcher.
    ready_s: float
    #: copy-engine start (after queueing and any one-time plan build).
    start_s: float
    compute_start_s: float
    completion_s: float
    stage_in_s: float
    gemm_s: float
    #: one-time plan-build latency charged to this batch (cache miss only).
    build_s: float
    #: per-request output blocks (functional fleets; ``None`` on dry-run).
    outputs: list[np.ndarray] | None = None

    @property
    def queue_delay_s(self) -> float:
        """Time the batch waited for the worker (excludes batching delay)."""
        return self.start_s - self.ready_s

    @property
    def service_s(self) -> float:
        return self.completion_s - self.start_s


class DeviceWorker:
    """One device's in-order queue with copy/compute engine overlap."""

    def __init__(self, device: Device, index: int):
        self.device = device
        self.index = index
        self._copy_free_s = 0.0
        self._compute_free_s = 0.0
        #: when this worker can accept its next batch (see :meth:`accept_s`).
        self._accept_s = 0.0
        #: accumulated compute-engine busy time (utilization numerator).
        self.busy_s = 0.0
        self.n_batches = 0
        self.n_requests = 0

    def backlog_s(self, now: float) -> float:
        """Seconds of queued compute ahead of a batch arriving now."""
        return max(self._compute_free_s - now, 0.0)

    @property
    def accept_s(self) -> float:
        """Earliest time this worker can take another batch.

        Set to the last batch's GEMM start: from that instant the copy
        engine is idle, so the next batch's stage-in overlaps the running
        GEMM and at most one GEMM ever waits behind the in-flight one.
        Everything further back stays in the scheduler, where priorities
        can still reorder it — the non-destructive preemption boundary.
        """
        return self._accept_s

    def schedule(
        self, batch: Batch, entry: CachedPlan, build_s: float, now: float = 0.0
    ) -> BatchExecution:
        """Place one batch on this worker's engines; returns its timeline.

        ``now`` is the dispatch instant (0 for the immediate FIFO path,
        where the batch's formation time orders the queue). The one-time
        plan build serializes ahead of the batch's stage-in on the copy
        engine (a cold plan cannot stage data); the GEMM starts once its
        stage-in and the previous GEMM are both done — the same event model
        as :func:`repro.tcbf.streaming.pipelined_makespan`.
        """
        start = max(batch.formed_s, self._copy_free_s, now)
        copy_end = start + build_s + entry.stage_in_s
        compute_start = max(copy_end, self._compute_free_s)
        completion = compute_start + entry.gemm_s
        self._copy_free_s = copy_end
        self._compute_free_s = completion
        self._accept_s = compute_start
        self.busy_s += entry.gemm_s
        self.n_batches += 1
        self.n_requests += batch.n_requests
        return BatchExecution(
            batch=batch,
            device_name=self.device.name,
            worker_index=self.index,
            ready_s=batch.formed_s,
            start_s=start,
            compute_start_s=compute_start,
            completion_s=completion,
            stage_in_s=entry.stage_in_s,
            gemm_s=entry.gemm_s,
            build_s=build_s,
        )

    def utilization(self, makespan_s: float) -> float:
        """Compute-engine busy fraction over the simulated horizon."""
        return self.busy_s / makespan_s if makespan_s > 0 else 0.0


class FleetDispatcher:
    """Least-loaded routing of batches over a homogeneous-mode fleet."""

    def __init__(
        self,
        devices: list[Device],
        cache: PlanCache | None = None,
        scheduler: PriorityScheduler | None = None,
    ):
        if not devices:
            raise ShapeError("fleet dispatch requires at least one device")
        if len({d.is_functional for d in devices}) > 1:
            raise DeviceError(
                "fleet devices must share one execution mode; "
                "got a mix of functional and dry-run"
            )
        self.workers = [DeviceWorker(d, i) for i, d in enumerate(devices)]
        self.cache = cache if cache is not None else PlanCache()
        self.scheduler = scheduler if scheduler is not None else PriorityScheduler()
        self.executions: list[BatchExecution] = []

    @property
    def is_functional(self) -> bool:
        return self.workers[0].device.is_functional

    @staticmethod
    def _routing_key(worker: DeviceWorker, now: float) -> tuple[float, int]:
        """Total order for routing decisions: (backlog, worker index).

        The explicit index component makes ties between equal float
        backlogs index-stable — without it, ``min`` would keep whichever
        equal-backlog worker happened to come first in a reordered worker
        list, and replay determinism would hinge on list construction
        order rather than on the fleet's declared indices.
        """
        return (worker.backlog_s(now), worker.index)

    def least_loaded(self, now: float) -> DeviceWorker:
        """Worker whose compute engine drains first (ties: lowest index)."""
        return min(self.workers, key=lambda w: self._routing_key(w, now))

    def dispatch(self, batch: Batch) -> BatchExecution:
        """Immediately route one batch (FIFO in call order).

        Functional fleets additionally execute the merged block for real —
        the shared weight set repeats per request, the request data blocks
        concatenate along the batch axis, and the output scatters back one
        slice per request (:func:`repro.tcbf.split_batched_output`).
        """
        worker = self.least_loaded(batch.formed_s)
        return self._place(worker, batch, now=0.0)

    # -- scheduler-mediated dispatch -----------------------------------------

    def submit(self, batch: Batch) -> None:
        """Queue one flushed batch for priority-ordered dispatch."""
        self.scheduler.enqueue(batch)

    def has_queued(self) -> bool:
        return not self.scheduler.empty()

    def next_accept_s(self) -> float:
        """Earliest instant any worker can take another queued batch."""
        return min(w.accept_s for w in self.workers)

    def drain(self, now: float) -> list[BatchExecution]:
        """Dispatch queued batches to every worker available at ``now``.

        Repeatedly asks the scheduler for the next batch (strict priority,
        DRR across tenants) and places it on the least-loaded available
        worker; stops when the queue empties or no worker can accept more
        work at this instant. Returns the executions placed, in order.
        """
        placed: list[BatchExecution] = []
        while not self.scheduler.empty():
            available = [w for w in self.workers if w.accept_s <= now]
            if not available:
                break
            worker = min(available, key=lambda w: self._routing_key(w, now))
            placed.append(self._place(worker, self.scheduler.next(), now=now))
        return placed

    def _place(
        self, worker: DeviceWorker, batch: Batch, now: float
    ) -> BatchExecution:
        entry, build_s = self.cache.get(worker.device, batch.workload, batch.n_requests)
        execution = worker.schedule(batch, entry, build_s, now=now)
        if self.is_functional:
            execution.outputs = self._execute(batch, entry)
        self.executions.append(execution)
        return execution

    def _execute(self, batch: Batch, entry: CachedPlan) -> list[np.ndarray]:
        workload = batch.workload
        if workload.weights is None:
            raise ShapeError(
                f"functional dispatch of {workload.name!r} requires the "
                "workload to carry its weight set"
            )
        blocks = [req.data for req in batch.requests]
        if any(b is None for b in blocks):
            raise ShapeError(
                f"functional dispatch of {workload.name!r} requires every "
                "request to carry a data block"
            )
        weights, data = merge_batch_operands(workload.weights, blocks)
        result = entry.plan.execute(weights, data)
        return split_batched_output(
            result.output, [workload.batch_per_request] * batch.n_requests
        )

    # -- aggregate statistics ------------------------------------------------

    def makespan_s(self) -> float:
        """Completion time of the last batch (0 when nothing ran)."""
        return max((e.completion_s for e in self.executions), default=0.0)

    def utilizations(self, makespan_s: float | None = None) -> list[float]:
        span = self.makespan_s() if makespan_s is None else makespan_s
        return [w.utilization(span) for w in self.workers]
