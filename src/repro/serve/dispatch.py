"""Fleet dispatch: route merged batches across per-device queues.

Each device gets a :class:`DeviceWorker` modelling the two engines the
streaming tier already distinguishes (:mod:`repro.tcbf.streaming`): a copy
engine running the stage-in kernels (transpose + packing) and a compute
engine running the GEMM. Consecutive batches on one worker overlap exactly
like consecutive blocks in a :class:`~repro.tcbf.streaming.BlockExecutor` —
the stage-in of batch *i+1* hides behind the GEMM of batch *i* — so the
service inherits the library's copy/compute overlap for free.

Routing is delegated to the :class:`~repro.serve.placement.Placer`: each
batch is placed on the *eligible* worker (capability + memory fit) with the
earliest predicted finish under that device's own cost model. On a
homogeneous fleet every device predicts identical costs, so the decision
collapses to the classic least-loaded rule — kept as
:meth:`FleetDispatcher.least_loaded` both for direct fleet studies and as
the documented trivial case of cost-aware placement. Split placements
(requests larger than any single device) shard across several workers at
once and complete at the slowest shard.

Two dispatch paths coexist:

* :meth:`FleetDispatcher.dispatch` — immediate placement, FIFO in call
  order (the pre-priority model, still used for direct fleet studies);
* :meth:`FleetDispatcher.submit` + :meth:`FleetDispatcher.drain` — batches
  wait in a :class:`~repro.serve.scheduler.PriorityScheduler` and reach a
  worker only when its pipeline can actually accept one (the previous
  batch's GEMM has started). Keeping the wait in the scheduler instead of
  on the worker is what makes priorities real: a high-priority batch jumps
  everything still queued, while each worker keeps at most one staged batch
  so copy/compute overlap is preserved exactly. A batch whose eligible
  workers are all busy is *held* (it never blocks batches other workers
  could serve) and retried first on the next drain.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError, ShapeError
from repro.gpusim.device import Device
from repro.serve.batching import Batch
from repro.serve.cache import CachedPlan, PlanCache
from repro.serve.obs.events import BatchExecuted, BatchHeld, CacheLookup
from repro.serve.obs.trace import NULL_RECORDER, NullRecorder
from repro.serve.placement import PlacementKind, Placer
from repro.serve.scheduler import PriorityScheduler, QueuePressure
from repro.serve.workload import Workload
from repro.tcbf import merge_batch_operands, split_batched_output
from repro.tcbf.scaling import rms


@dataclass
class BatchExecution:
    """One dispatched batch on the fleet timeline.

    A split placement produces one top-level record (`completion_s` is the
    slowest shard's) with the per-shard records in :attr:`shards`;
    single-worker placements leave ``shards`` as ``None``.
    """

    batch: Batch
    device_name: str
    worker_index: int
    #: when the batch left the batcher.
    ready_s: float
    #: copy-engine start (after queueing and any one-time plan build).
    start_s: float
    compute_start_s: float
    completion_s: float
    stage_in_s: float
    gemm_s: float
    #: one-time plan-build latency charged to this batch (cache miss only).
    build_s: float
    #: per-request output blocks (functional fleets; ``None`` on dry-run).
    outputs: list[np.ndarray] | None = None
    #: per-shard executions of a split placement (``None`` otherwise).
    shards: list["BatchExecution"] | None = None

    @property
    def queue_delay_s(self) -> float:
        """Time the batch waited for the worker (excludes batching delay)."""
        return self.start_s - self.ready_s

    @property
    def service_s(self) -> float:
        return self.completion_s - self.start_s

    @property
    def is_split(self) -> bool:
        return self.shards is not None


class DeviceWorker:
    """One device's in-order queue with copy/compute engine overlap.

    ``joined_s``/``ready_s`` support elastic fleets: a worker scaled up at
    ``joined_s`` is provisioned from that instant but cannot start work
    before ``ready_s`` (the modelled startup latency) — its engines simply
    begin free at ``ready_s``, so routing sees the pending startup as
    backlog and no extra event machinery is needed. ``draining`` marks a
    worker the autoscaler is removing: it takes no new placements, finishes
    what it has, and is retired (``retired_s`` set) once idle.
    """

    def __init__(self, device: Device, index: int, joined_s: float = 0.0, ready_s: float = 0.0):
        self.device = device
        self.index = index
        self._copy_free_s = ready_s
        self._compute_free_s = ready_s
        #: when this worker can accept its next batch (see :meth:`accept_s`).
        self._accept_s = ready_s
        #: accumulated compute-engine busy time (utilization numerator).
        self.busy_s = 0.0
        self.n_batches = 0
        self.n_requests = 0
        #: when this worker was provisioned (0.0 for the seed fleet).
        self.joined_s = joined_s
        #: transient compute-rate multiplier (fault injection): batches
        #: scheduled while > 1.0 run that many times slower on both
        #: engines. Exactly 1.0 (the default) takes the untouched
        #: fast path, so fault-free runs stay bit-identical.
        self.slow_factor = 1.0
        #: marked for scale-down: no new placements, drains what it has.
        self.draining = False
        #: when the drain began (retirement never predates this instant).
        self._drain_s = 0.0
        #: when the drained worker left the fleet (``None`` while serving).
        self.retired_s: float | None = None

    @property
    def accepting(self) -> bool:
        """Whether placement may still route new batches to this worker."""
        return not self.draining and self.retired_s is None

    def backlog_s(self, now: float) -> float:
        """Seconds of queued compute ahead of a batch arriving now."""
        return max(self._compute_free_s - now, 0.0)

    @property
    def accept_s(self) -> float:
        """Earliest time this worker can take another batch.

        Set to the last batch's GEMM start: from that instant the copy
        engine is idle, so the next batch's stage-in overlaps the running
        GEMM and at most one GEMM ever waits behind the in-flight one.
        Everything further back stays in the scheduler, where priorities
        can still reorder it — the non-destructive preemption boundary.
        """
        return self._accept_s

    def schedule(
        self,
        batch: Batch,
        entry: CachedPlan,
        build_s: float,
        now: float = 0.0,
        n_requests: int | None = None,
        stage_in_override: float | None = None,
    ) -> BatchExecution:
        """Place one batch on this worker's engines; returns its timeline.

        ``now`` is the dispatch instant (0 for the immediate FIFO path,
        where the batch's formation time orders the queue). The one-time
        plan build serializes ahead of the batch's stage-in on the copy
        engine (a cold plan cannot stage data); the GEMM starts once its
        stage-in and the previous GEMM are both done — the same event model
        as :func:`repro.tcbf.streaming.pipelined_makespan`.
        ``n_requests`` overrides the request count attributed to this
        worker (a split batch touches several workers at once).
        ``stage_in_override`` replaces the plan's stage-in time for
        pipeline-stage batches whose input buffer is (partly) resident here
        or must transfer from another worker
        (:meth:`~repro.serve.placement.Placer.stage_in_s`); ``None`` — the
        only value legacy batches ever pass — keeps the plan's own cost.
        """
        stage_in_s, gemm_s = entry.stage_in_s, entry.gemm_s
        if stage_in_override is not None:
            stage_in_s = stage_in_override
        if self.slow_factor != 1.0:
            # Straggler window: both engines run degraded. Guarded so the
            # healthy path multiplies by nothing — float-identical to the
            # pre-fault-injection arithmetic.
            stage_in_s *= self.slow_factor
            gemm_s *= self.slow_factor
        start = max(batch.formed_s, self._copy_free_s, now)
        copy_end = start + build_s + stage_in_s
        compute_start = max(copy_end, self._compute_free_s)
        completion = compute_start + gemm_s
        self._copy_free_s = copy_end
        self._compute_free_s = completion
        self._accept_s = compute_start
        self.busy_s += gemm_s
        self.n_batches += 1
        self.n_requests += batch.n_requests if n_requests is None else n_requests
        return BatchExecution(
            batch=batch,
            device_name=self.device.name,
            worker_index=self.index,
            ready_s=batch.formed_s,
            start_s=start,
            compute_start_s=compute_start,
            completion_s=completion,
            stage_in_s=stage_in_s,
            gemm_s=gemm_s,
            build_s=build_s,
        )

    def cancel_tail(self, execution: BatchExecution, now: float) -> float:
        """Cancel one of this worker's executions at ``now`` (hedge loser).

        Returns the compute seconds actually burned — the wasted bill the
        report charges. Only the *tail* reservation can be refunded (work
        scheduled behind it already timed against its completion); a
        non-tail cancellation runs to completion and bills its full GEMM.
        """
        burned = max(0.0, min(execution.completion_s, now) - execution.compute_start_s)
        if self._compute_free_s == execution.completion_s:
            freed_from = max(execution.compute_start_s, min(now, execution.completion_s))
            self.busy_s -= execution.completion_s - freed_from
            self._compute_free_s = freed_from
            return burned
        return execution.completion_s - execution.compute_start_s

    def revoke(self, execution: BatchExecution, now: float) -> float:
        """Account one in-flight execution lost to this worker's crash.

        The GEMM time :meth:`schedule` charged to ``busy_s`` is trimmed
        back to what actually burned before the crash instant; returns the
        burned compute seconds (the crash's wasted bill).
        """
        burned = max(0.0, min(execution.completion_s, now) - execution.compute_start_s)
        self.busy_s -= (execution.completion_s - execution.compute_start_s) - burned
        return burned

    def utilization(self, makespan_s: float) -> float:
        """Compute-engine busy fraction over the simulated horizon."""
        return self.busy_s / makespan_s if makespan_s > 0 else 0.0


class FleetDispatcher:
    """Placer-routed dispatch of batches over a (possibly mixed) fleet.

    Devices may differ in model and capability (a GH200 next to an MI300X);
    only the execution mode (functional vs dry-run) must be uniform. The
    bound :class:`~repro.serve.placement.Placer` makes every routing
    decision; :meth:`least_loaded` survives as the homogeneous special
    case.
    """

    def __init__(
        self,
        devices: list[Device],
        cache: PlanCache | None = None,
        scheduler: PriorityScheduler | None = None,
        placer: Placer | None = None,
    ):
        if not devices:
            raise ShapeError("fleet dispatch requires at least one device")
        if len({d.is_functional for d in devices}) > 1:
            raise DeviceError(
                "fleet devices must share one execution mode; "
                "got a mix of functional and dry-run"
            )
        self.workers = [DeviceWorker(d, i) for i, d in enumerate(devices)]
        #: the fleet's execution mode, captured at construction — the
        #: live worker list can transiently empty out under crash faults.
        self._functional = devices[0].is_functional
        self.cache = cache if cache is not None else PlanCache()
        self.scheduler = scheduler if scheduler is not None else PriorityScheduler()
        self.placer = placer if placer is not None else Placer()
        self.placer.attach(self.workers, self.cache)
        self.executions: list[BatchExecution] = []
        #: batches popped from the scheduler whose eligible workers were all
        #: busy; retried (in pop order) at the start of every drain.
        self._held: list[Batch] = []
        #: next worker index for scale-ups — indices are never reused, so
        #: every placement decision and report row stays unambiguous even
        #: after workers retire.
        self._next_index = len(devices)
        #: drained workers removed from the fleet, kept for reporting.
        self._retired: list[DeviceWorker] = []
        #: optional callable yielding the workloads still *forming* in the
        #: micro-batcher (the service wires it up): admitted work that has
        #: not reached the scheduler yet, which retirement must not
        #: strand. ``None`` means no batcher-side work exists.
        self.forming_workloads: Callable[[], Iterable[Workload]] | None = None
        #: trace recorder (the service binds its own via :meth:`bind_obs`).
        self.recorder: NullRecorder = NULL_RECORDER
        #: optional metrics registry ("dispatch.*" / "cache.*" counters).
        self.metrics = None

    def bind_obs(self, recorder: NullRecorder, metrics) -> None:
        """Bind one run's trace recorder and metrics registry fleet-wide.

        Called once by the service before replay: the dispatcher emits the
        execution and cache-lookup events itself and hands the same
        recorder/registry to the scheduler and placer, so every component
        publishes into one stream.
        """
        self.recorder = recorder
        self.metrics = metrics
        self.scheduler.recorder = recorder
        self.scheduler.metrics = metrics
        self.placer.metrics = metrics

    @property
    def is_functional(self) -> bool:
        return self._functional

    @staticmethod
    def _routing_key(worker: DeviceWorker, now: float) -> tuple[float, int]:
        """Total order for routing decisions: (backlog, worker index).

        The explicit index component makes ties between equal float
        backlogs index-stable — without it, ``min`` would keep whichever
        equal-backlog worker happened to come first in a reordered worker
        list, and replay determinism would hinge on list construction
        order rather than on the fleet's declared indices.
        """
        return (worker.backlog_s(now), worker.index)

    def least_loaded(self, now: float) -> DeviceWorker:
        """Worker whose compute engine drains first (ties: lowest index).

        The cost-model-blind routing rule — what the placer's predicted
        finish reduces to when every device prices the workload equally.
        """
        return min(self.workers, key=lambda w: self._routing_key(w, now))

    def worker_by_index(self, index: int) -> DeviceWorker:
        """The worker with a declared index (robust to list reordering)."""
        worker = self.workers[index] if index < len(self.workers) else None
        if worker is not None and worker.index == index:
            return worker
        return next(w for w in self.workers if w.index == index)

    # -- elastic fleets ------------------------------------------------------

    @property
    def all_workers(self) -> list[DeviceWorker]:
        """Every worker that ever served, index order (reports' view)."""
        return sorted(self.workers + self._retired, key=lambda w: w.index)

    @property
    def accepting_workers(self) -> list[DeviceWorker]:
        """Workers new placements may target (excludes draining ones)."""
        return [w for w in self.workers if w.accepting]

    def add_worker(
        self, device: Device, now: float = 0.0, ready_s: float | None = None
    ) -> DeviceWorker:
        """Scale up: join one device to the fleet at ``now``.

        The worker is provisioned immediately (it counts toward
        device-seconds from ``now``) but cannot start work before
        ``ready_s`` — the modelled startup latency. Its plan-cache segment
        starts empty, so its first batches pay the one-time plan builds:
        cold start is charged where it lands, never hidden. Queued and held
        batches are re-stamped so work that was capability- or
        capacity-bound can immediately consider the newcomer.
        """
        if device.is_functional != self.is_functional:
            raise DeviceError(
                "scaled-up device must share the fleet's execution mode; "
                f"got functional={device.is_functional} on a "
                f"functional={self.is_functional} fleet"
            )
        worker = DeviceWorker(
            device,
            self._next_index,
            joined_s=now,
            ready_s=now if ready_s is None else ready_s,
        )
        self._next_index += 1
        self.workers.append(worker)
        self.refresh_candidates()
        return worker

    def begin_drain(self, index: int, now: float) -> DeviceWorker:
        """Scale down: mark one worker for removal, non-destructively.

        Mirrors PR 3's preemption rule: nothing in flight is revoked. The
        worker finishes everything already scheduled on its engines; its
        queued and held batches are re-stamped onto the remaining fleet
        (falling back to the draining worker only when no accepting worker
        is capable); and :meth:`reap` retires it once it is idle and no
        queued work references it.
        """
        worker = self.worker_by_index(index)
        if not worker.accepting:
            raise DeviceError(f"worker {index} is already draining or retired")
        worker.draining = True
        worker._drain_s = now
        self.refresh_candidates()
        return worker

    def crash(self, index: int, now: float) -> tuple[DeviceWorker, list[Batch]]:
        """Non-graceful removal: the worker leaves the fleet *now*.

        The destructive cousin of :meth:`begin_drain` — nothing finishes.
        The worker is retired immediately, its plan-cache segment is
        released, and every queued/held batch that can no longer dispatch
        is pulled out and returned for the service's recovery layer to
        retry or fail: split batches whose committed shard set names the
        dead worker, plus any batch left with no capable worker at all.
        Surviving batches are re-stamped onto the remaining fleet, the
        same :meth:`refresh_candidates` path a drain takes.
        """
        worker = self.worker_by_index(index)
        worker.draining = False
        worker.retired_s = now
        self.workers.remove(worker)
        self._retired.append(worker)
        self.cache.release(worker.device)

        def doomed(batch: Batch) -> bool:
            decision = batch.decision
            if (
                decision is not None
                and decision.kind is PlacementKind.SPLIT
                and index in decision.shard_worker_indices
            ):
                return True
            return not self.placer.capable_workers(batch.workload, include_draining=True)

        displaced: list[Batch] = []
        for batch in list(self.scheduler.queued_batches()):
            if doomed(batch):
                self.scheduler.remove(batch)
                displaced.append(batch)
        kept: list[Batch] = []
        for batch in self._held:
            (displaced if doomed(batch) else kept).append(batch)
        self._held = kept
        self.refresh_candidates()
        return worker, displaced

    def hedge(self, execution: BatchExecution, worker: DeviceWorker, now: float) -> BatchExecution:
        """Duplicate one placed batch on a second worker (hedged dispatch).

        The duplicate occupies the hedge worker's engines for real — its
        cost is never modelled away — but is *not* appended to
        :attr:`executions`: the service resolves the race at first
        completion and swaps the winner in. Outputs are shared with the
        primary (the simulated computation is worker-independent).
        """
        batch = execution.batch
        entry, build_s = self.cache.get(worker.device, batch.workload, batch.n_requests)
        self._record_lookup(worker, batch.workload, batch.n_requests, build_s, now)
        duplicate = worker.schedule(batch, entry, build_s, now=now, n_requests=0)
        self._record_execution(duplicate)
        duplicate.outputs = execution.outputs
        return duplicate

    def recover_shard(
        self,
        execution: BatchExecution,
        shard_index: int,
        worker: DeviceWorker,
        now: float,
    ) -> BatchExecution:
        """Re-execute one lost shard of a split placement on a survivor.

        Only the lost shard re-runs — the surviving shards' results stand
        — and the parent's completion (the slowest shard) is re-derived.
        The request count stays attributed to the first shard's worker.
        """
        batch = execution.batch
        extent = batch.decision.shard_extents[shard_index]
        shard_workload = batch.workload.shard(extent)
        entry, build_s = self.cache.get(worker.device, shard_workload, 1)
        self._record_lookup(worker, shard_workload, 1, build_s, now)
        redo = worker.schedule(batch, entry, build_s, now=now, n_requests=0)
        self._record_execution(redo, shard_index=shard_index)
        execution.shards[shard_index] = redo
        execution.completion_s = max(e.completion_s for e in execution.shards)
        execution.device_name = "+".join(e.device_name for e in execution.shards)
        execution.worker_index = execution.shards[0].worker_index
        return redo

    def _referenced(self, index: int) -> bool:
        """Whether admitted-but-undispatched work still needs this worker.

        Queued and held batches reference workers through their stamped
        candidates (or committed shard sets); work still *forming* in the
        micro-batcher pins a draining worker when it is the last one
        capable of the workload — otherwise the flush would find an empty
        candidate set for a legitimately admitted request.
        """
        for batch in self._held + list(self.scheduler.queued_batches()):
            if batch.candidate_indices and index in batch.candidate_indices:
                return True
            decision = batch.decision
            if (
                decision is not None
                and decision.kind is PlacementKind.SPLIT
                and index in decision.shard_worker_indices
            ):
                return True
        if self.forming_workloads is not None:
            worker = self.worker_by_index(index)
            for workload in self.forming_workloads():
                if workload.supported_by(worker.device.spec) and not (
                    self.placer.capable_workers(workload)
                ):
                    return True
        return False

    def next_retire_s(self) -> float | None:
        """Earliest instant a draining worker can actually leave the fleet.

        Only unreferenced draining workers count: one still named by a
        queued batch's candidates (or a committed split decision) will
        produce its own dispatch events, after which this advances.
        """
        times = [
            max(w._compute_free_s, w._drain_s)
            for w in self.workers
            if w.draining and not self._referenced(w.index)
        ]
        return min(times) if times else None

    def reap(self, now: float) -> list[DeviceWorker]:
        """Retire every draining worker that is idle and unreferenced.

        Retirement releases the worker's plan-cache segment (its plans hold
        device-resident state that leaves with the device) and moves it to
        the retired list so reports still see its batches and busy time.
        """
        retired: list[DeviceWorker] = []
        for worker in list(self.workers):
            if (
                worker.draining
                and max(worker._compute_free_s, worker._drain_s) <= now
                and not self._referenced(worker.index)
            ):
                worker.retired_s = now
                worker.draining = False
                self.workers.remove(worker)
                self._retired.append(worker)
                self.cache.release(worker.device)
                retired.append(worker)
        return retired

    def refresh_candidates(self) -> None:
        """Re-stamp eligible workers on every queued and held batch.

        Called on every fleet change: a scale-up makes the newcomer an
        immediate candidate for waiting work, a drain re-routes everything
        that targeted the leaving worker. Split decisions keep their shard
        worker set — those placements are committed, and :meth:`reap`
        waits for them. Predicted service times are re-priced too, so
        admission's queue-drain estimate tracks the fleet it actually has.
        """
        for batch in self._held + list(self.scheduler.queued_batches()):
            if batch.decision is not None and batch.decision.kind is PlacementKind.SPLIT:
                continue
            # Clearing first is load-bearing: _candidates returns the
            # stamped indices verbatim when they are set.
            batch.candidate_indices = None
            batch.candidate_indices = tuple(w.index for w in self._candidates(batch))
            batch.hold_until_s = None  # the fleet changed; the preference is stale
            batch.predicted_service_s = self.placer.predicted_service_s(
                batch.workload, batch.n_requests
            )

    def queued_pressure_by_class(self) -> dict[int, "QueuePressure"]:
        """Per-priority-class pressure over scheduler *and* held batches.

        The signal the autoscaling policies consume: the scheduler's own
        :meth:`~repro.serve.scheduler.PriorityScheduler.pressure_by_class`
        misses batches parked dispatcher-side, so the two are merged here —
        a held capability-bound batch is exactly the pressure a scale-up
        could relieve.
        """
        pressure = self.scheduler.pressure_by_class()
        for batch in self._held:
            pressure[batch.priority] = pressure.get(batch.priority, QueuePressure()).plus(batch)
        return dict(sorted(pressure.items()))

    def queued_drain_by_capability(self) -> dict[str, float]:
        """Predicted drain seconds per capability class (precision).

        For each precision with queued/held work: the summed predicted
        service time divided by the number of *accepting* workers that
        support it — the per-capability-pool latency pressure. A capability
        whose pool is empty reports ``inf``: queued work no accepting
        worker can serve is the strongest possible scale-up signal.
        """
        service: dict[str, float] = {}
        sample: dict[str, object] = {}
        for batch in self._held + list(self.scheduler.queued_batches()):
            cap = batch.workload.capability
            service[cap] = service.get(cap, 0.0) + batch.predicted_service_s
            sample.setdefault(cap, batch.workload)
        drains: dict[str, float] = {}
        for cap, total in service.items():
            pool = [w for w in self.accepting_workers if sample[cap].supported_by(w.device.spec)]
            drains[cap] = total / len(pool) if pool else float("inf")
        return drains

    def _candidates(self, batch: Batch) -> list[DeviceWorker]:
        """Workers this batch may run on (capability, then memory fit).

        Eligibility is static per batch (device capability and memory fit
        do not change over a run), so :meth:`submit` stamps the indices
        once and every later event reads them back instead of re-running
        the capability/footprint checks per worker.
        """
        if batch.candidate_indices is not None:
            return [self.worker_by_index(i) for i in batch.candidate_indices]
        if batch.decision is not None and batch.decision.kind is PlacementKind.SPLIT:
            wanted = set(batch.decision.shard_worker_indices)
            return [w for w in self.workers if w.index in wanted]
        capable = self.placer.capable_workers(batch.workload)
        if not capable:
            # Every capable worker is draining: the batch was admitted
            # before the drain began, so it is committed work the drain
            # must still serve (non-destructive scale-down) — fall back to
            # the draining pool rather than strand it.
            capable = self.placer.capable_workers(batch.workload, include_draining=True)
        fits = [w for w in capable if self.placer.fits(w, batch.workload, batch.n_requests)]
        return fits or capable

    def dispatch(self, batch: Batch) -> BatchExecution:
        """Immediately route one batch (FIFO in call order).

        Functional fleets additionally execute the merged block for real —
        the shared weight set repeats per request, the request data blocks
        concatenate along the batch axis, and the output scatters back one
        slice per request (:func:`repro.tcbf.split_batched_output`).
        """
        if batch.decision is not None and batch.decision.kind is PlacementKind.SPLIT:
            return self._place_split(batch, now=0.0)
        candidates = self._candidates(batch)
        if not candidates:
            raise DeviceError(
                f"no device in the fleet supports workload "
                f"{batch.workload.name!r} ({batch.workload.precision.value})"
            )
        worker = self.placer.select_worker(batch, candidates, batch.formed_s)
        return self._place(worker, batch, now=0.0)

    # -- scheduler-mediated dispatch -----------------------------------------

    def submit(self, batch: Batch) -> None:
        """Queue one flushed batch for priority-ordered dispatch.

        Stamps the placer's predicted service time and the eligible worker
        indices on the batch (the admission controller's per-device drain
        estimate, and the dispatcher's per-event candidate set) and
        validates that at least one worker can ever serve it — infeasible
        batches must be shed at admission, never parked in the queue
        forever.
        """
        candidates = self._candidates(batch)
        if not candidates:
            raise DeviceError(
                f"no device in the fleet supports workload "
                f"{batch.workload.name!r} ({batch.workload.precision.value}); "
                "the placer should have shed it at admission"
            )
        batch.candidate_indices = tuple(w.index for w in candidates)
        if batch.decision is not None and batch.decision.kind is PlacementKind.SPLIT:
            batch.predicted_service_s = self.placer.predicted_split_service_s(batch.decision)
        else:
            batch.predicted_service_s = self.placer.predicted_service_s(
                batch.workload, batch.n_requests
            )
        self.scheduler.enqueue(batch)

    def has_queued(self) -> bool:
        return bool(self._held) or not self.scheduler.empty()

    @property
    def held_requests(self) -> int:
        """Requests in batches held back by busy eligible workers."""
        return sum(b.n_requests for b in self._held)

    def held_service_s(self, priority: int) -> float:
        """Predicted service queued dispatcher-side at ``priority`` or above.

        Held batches left the scheduler, so admission's
        :meth:`PriorityScheduler.queued_service_s` no longer sees them;
        this is the matching term so the latency projection covers *all*
        undispatched work an arrival must wait out.
        """
        return sum(b.predicted_service_s for b in self._held if b.priority <= priority)

    def next_accept_s(self) -> float | None:
        """Earliest instant a worker can take one of the queued batches.

        Restricted to workers eligible for at least one queued/held batch:
        an AMD worker going idle is not an event for a queue of int1 work.
        ``None`` when no live worker matches (possible transiently on an
        elastic fleet while candidates are re-stamped).

        A locality-held stage batch (``hold_until_s`` set) wakes at its
        preferred worker's accept time instead of its candidates' — an
        idle non-preferred candidate is deliberately *not* a dispatch
        opportunity for it, and treating it as one would stall the clock.
        """
        indices: set[int] = set()
        waits: list[float] = []
        for batch in self._held:
            if batch.hold_until_s is not None:
                waits.append(batch.hold_until_s)
            else:
                indices.update(batch.candidate_indices or ())
        for batch in self.scheduler.queued_batches():
            indices.update(batch.candidate_indices or ())
        accepts = [w.accept_s for w in self.workers if w.index in indices]
        accepts.extend(waits)
        return min(accepts) if accepts else None

    def drain(self, now: float) -> list[BatchExecution]:
        """Dispatch queued batches to every worker available at ``now``.

        Held batches (eligible workers busy at an earlier drain) and the
        scheduler's queue are merged by urgency: at each step the more
        urgent of (most urgent held batch, the scheduler's head class)
        dispatches next, with held winning ties (it was popped earlier), so
        holding never lets a stale low-priority batch jump a later, more
        urgent arrival. A batch whose eligible workers cannot accept is
        (re)held without blocking work other devices could take. Returns
        the executions placed, in order.
        """
        placed: list[BatchExecution] = []
        remaining: list[Batch] = []
        if self.scheduler.preemptive:
            # Stable by class: FIFO within a class is preserved.
            self._held.sort(key=lambda b: b.priority)
        held = deque(self._held)
        self._held = []
        while True:
            head_p = self.scheduler.head_priority()
            use_held = bool(held) and (
                not self.scheduler.preemptive
                or head_p is None
                or held[0].priority <= head_p
            )
            if use_held:
                batch = held.popleft()
            elif head_p is None or all(w.accept_s > now for w in self.workers):
                break
            else:
                batch = self.scheduler.next(now)
            execution = self._try_place(batch, now)
            if execution is None:
                if self.metrics is not None:
                    self.metrics.inc("dispatch.holds")
                if self.recorder.enabled:
                    self.recorder.emit(
                        BatchHeld(
                            t_s=now,
                            bid=batch.bid,
                            priority=batch.priority,
                            candidates=batch.candidate_indices or (),
                        )
                    )
                remaining.append(batch)
            else:
                placed.append(execution)
        for batch in held:
            # Never attempted this drain (more urgent work took the freed
            # worker and the loop broke with every worker busy) — its wake
            # stamp predates this instant and would pin the clock there.
            # Cleared, the batch wakes on its candidates' accept times,
            # all of which are now in the future, and re-stamps on the
            # next attempt if waiting is still the predicted-cheaper move.
            batch.hold_until_s = None
        self._held = remaining + list(held)
        return placed

    def _try_place(self, batch: Batch, now: float) -> BatchExecution | None:
        """Place one batch if an eligible worker can accept it at ``now``."""
        batch.hold_until_s = None  # re-evaluated on every attempt
        candidates = self._candidates(batch)
        available = [w for w in candidates if w.accept_s <= now]
        if not available:
            return None
        if batch.decision is not None and batch.decision.kind is PlacementKind.SPLIT:
            return self._place_split(batch, now=now)
        if (
            self.placer.stage_locality
            and batch.stage_input_bytes > 0
            and len(candidates) > len(available)
        ):
            # Stage-locality placement gets the full candidate view, busy
            # workers included: the drain loop wakes the instant the *first*
            # worker frees, so ``available`` is almost always a singleton and
            # a locality preference could otherwise never act. The placer's
            # finish key prices the busy resident worker's backlog against
            # the idle worker's interconnect transfer; when waiting for the
            # buffer-resident worker is predicted cheaper, the batch is held
            # and retried when that worker frees.
            preferred = self.placer.select_worker(batch, candidates, now)
            if preferred.accept_s > now:
                # Stamp the wake time: without it the event loop would see
                # the idle (non-preferred) worker's past accept_s as the
                # next dispatch instant and spin without advancing time.
                batch.hold_until_s = preferred.accept_s
                if self.metrics is not None:
                    self.metrics.inc("dispatch.stage_waits")
                return None
            return self._place(preferred, batch, now=now)
        worker = self.placer.select_worker(batch, available, now)
        return self._place(worker, batch, now=now)

    def _place(self, worker: DeviceWorker, batch: Batch, now: float) -> BatchExecution:
        entry, build_s = self.cache.get(worker.device, batch.workload, batch.n_requests)
        self._record_lookup(worker, batch.workload, batch.n_requests, build_s, now)
        stage_in = None
        if batch.stage_input_bytes > 0:
            cost = self.placer.estimate(worker, batch.workload, batch.n_requests)
            stage_in = self.placer.stage_in_s(worker, batch, cost)
            if self.metrics is not None and stage_in is not None:
                self.metrics.inc(
                    "dispatch.stage_local"
                    if batch.resident_bytes_on(worker.index) > 0
                    else "dispatch.stage_remote"
                )
        execution = worker.schedule(batch, entry, build_s, now=now, stage_in_override=stage_in)
        self._record_execution(execution)
        if self.is_functional:
            execution.outputs = self._execute(batch, entry)
        self.executions.append(execution)
        return execution

    # -- observability hooks -------------------------------------------------

    def _record_lookup(
        self,
        worker: DeviceWorker,
        workload: Workload,
        n_requests: int,
        build_s: float,
        now: float,
    ) -> None:
        """Publish one plan-cache lookup (the dispatcher sees the worker)."""
        if self.metrics is not None:
            self.metrics.inc("cache.hits" if build_s == 0.0 else "cache.misses")
        if self.recorder.enabled:
            self.recorder.emit(
                CacheLookup(
                    t_s=now,
                    device=worker.device.name,
                    worker_index=worker.index,
                    workload=workload.name,
                    n_requests=n_requests,
                    hit=build_s == 0.0,
                    build_s=build_s,
                )
            )

    def _record_execution(self, execution: BatchExecution, shard_index: int = -1) -> None:
        """Emit the execution-timeline event of one placed (shard) launch."""
        if self.metrics is not None:
            self.metrics.inc("dispatch.launches")
        if self.recorder.enabled:
            batch = execution.batch
            self.recorder.emit(
                BatchExecuted(
                    t_s=execution.start_s,
                    bid=batch.bid,
                    worker_index=execution.worker_index,
                    device=execution.device_name,
                    workload=batch.workload.name,
                    priority=batch.priority,
                    tenant=batch.tenant,
                    n_requests=batch.n_requests,
                    rids=tuple(r.rid for r in batch.requests),
                    ready_s=execution.ready_s,
                    start_s=execution.start_s,
                    build_s=execution.build_s,
                    stage_in_s=execution.stage_in_s,
                    compute_start_s=execution.compute_start_s,
                    completion_s=execution.completion_s,
                    shard_index=shard_index,
                )
            )

    # -- split placement -----------------------------------------------------

    def _place_split(self, batch: Batch, now: float) -> BatchExecution:
        """Shard one oversized batch across its decision's workers.

        Every shard is scheduled on its own worker's engines (plans come
        from the same per-device cache, so repeat splits hit); the request
        completes when the slowest shard does. Shards queue behind whatever
        their workers are running — a split claims the whole eligible
        fleet, which is the point: the request did not fit anything
        smaller.
        """
        decision = batch.decision
        shard_execs: list[BatchExecution] = []
        shard_entries: list[CachedPlan] = []
        for i, (index, extent) in enumerate(
            zip(decision.shard_worker_indices, decision.shard_extents)
        ):
            worker = self.worker_by_index(index)
            shard_workload = batch.workload.shard(extent)
            entry, build_s = self.cache.get(worker.device, shard_workload, 1)
            self._record_lookup(worker, shard_workload, 1, build_s, now)
            shard = worker.schedule(
                batch,
                entry,
                build_s,
                now=now,
                n_requests=batch.n_requests if i == 0 else 0,
            )
            self._record_execution(shard, shard_index=i)
            shard_entries.append(entry)
            shard_execs.append(shard)
        execution = BatchExecution(
            batch=batch,
            device_name="+".join(e.device_name for e in shard_execs),
            worker_index=shard_execs[0].worker_index,
            ready_s=batch.formed_s,
            start_s=min(e.start_s for e in shard_execs),
            compute_start_s=min(e.compute_start_s for e in shard_execs),
            completion_s=max(e.completion_s for e in shard_execs),
            stage_in_s=max(e.stage_in_s for e in shard_execs),
            gemm_s=max(e.gemm_s for e in shard_execs),
            build_s=max(e.build_s for e in shard_execs),
            shards=shard_execs,
        )
        if self.is_functional:
            execution.outputs = self._execute_split(batch, shard_entries)
        self.executions.append(execution)
        return execution

    def _execute_split(self, batch: Batch, shard_entries: list[CachedPlan]) -> list[np.ndarray]:
        """Functionally beamform one split request and merge the shards.

        ``shard_entries`` are the cache entries the placement step already
        fetched (one per shard, in decision order) — re-fetching here would
        double-count cache hits. Mirrors :meth:`ShardedBeamformer.execute
        <repro.tcbf.sharding.ShardedBeamformer.execute>` batch-dimension
        slicing: disjoint batch ranges with one global RMS scale, outputs
        concatenated back along the batch axis.
        """
        workload = batch.workload
        request = batch.requests[0]
        if workload.weights is None or request.data is None:
            raise ShapeError(
                f"functional split dispatch of {workload.name!r} requires "
                "the workload's weights and the request's data block"
            )
        decision = batch.decision
        scale = None
        plans = [entry.plan for entry in shard_entries]
        if plans[0].needs_scale:
            scale = rms(np.asarray(request.data))
        pieces = []
        offset = 0
        for plan, extent in zip(plans, decision.shard_extents):
            w_shard = np.asarray(workload.weights)[offset : offset + extent]
            d_shard = np.asarray(request.data)[offset : offset + extent]
            result = plan.execute(w_shard, d_shard, scale=scale)
            pieces.append(result.output)
            offset += extent
        return [np.concatenate(pieces, axis=0)]

    # -- merged (and bucket-padded) execution --------------------------------

    def _execute(self, batch: Batch, entry: CachedPlan) -> list[np.ndarray]:
        workload = batch.workload
        if workload.weights is None:
            raise ShapeError(
                f"functional dispatch of {workload.name!r} requires the "
                "workload to carry its weight set"
            )
        blocks = []
        for req in batch.requests:
            if req.data is None:
                raise ShapeError(
                    f"functional dispatch of {workload.name!r} requires every "
                    "request to carry a data block"
                )
            blocks.append(self._padded_block(req.data, workload.n_samples))
        weights, data = merge_batch_operands(workload.weights, blocks)
        result = entry.plan.execute(weights, data)
        outputs = split_batched_output(
            result.output, [workload.batch_per_request] * batch.n_requests
        )
        # Trim bucket padding back to each request's own sample count: the
        # padded columns are all-zero work the caller never asked for.
        return [
            out[..., : req.workload.n_samples]
            for out, req in zip(outputs, batch.requests)
        ]

    @staticmethod
    def _padded_block(data: np.ndarray, n_samples: int) -> np.ndarray:
        """Zero-pad one request's B operand to the bucket's sample count."""
        data = np.asarray(data)
        if data.shape[-1] == n_samples:
            return data
        if data.shape[-1] > n_samples:
            raise ShapeError(
                f"request data has {data.shape[-1]} samples but the merged "
                f"workload executes {n_samples}"
            )
        pad = [(0, 0)] * (data.ndim - 1) + [(0, n_samples - data.shape[-1])]
        return np.pad(data, pad)

    # -- aggregate statistics ------------------------------------------------

    def makespan_s(self) -> float:
        """Completion time of the last batch (0 when nothing ran)."""
        return max((e.completion_s for e in self.executions), default=0.0)

    def utilizations(self, makespan_s: float | None = None) -> list[float]:
        """Per-worker busy fraction, retired workers included (index order)."""
        span = self.makespan_s() if makespan_s is None else makespan_s
        return [w.utilization(span) for w in self.all_workers]
