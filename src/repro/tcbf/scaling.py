"""Operand normalization for the tensor-core data path.

float16 inputs must stay inside half range and 1-bit inputs are scale-free,
so the beamformer normalizes the streaming operand to unit RMS before the
GEMM and (optionally) restores the scale afterwards. The correct statistic
is the root-mean-square of the complex magnitudes,

    rms(x) = sqrt(mean(|x|^2)),

*not* ``np.abs(x).std()`` (the standard deviation of the magnitudes): for a
nonzero-mean signal the std under-estimates the energy and the operand would
be mis-scaled. Both applications previously hand-rolled the std variant;
this module is the single corrected implementation. The reduction runs in
the operand's own :class:`~repro.backend.ArrayBackend` (no host round-trip
of the block); only the final scalar crosses back to Python.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, get_backend


def rms(values, backend: ArrayBackend | None = None) -> float:
    """Root-mean-square magnitude ``sqrt(mean(|x|^2))`` of a complex array.

    Returns 1.0 for an all-zero (or empty) input so callers can divide by it
    unconditionally.
    """
    be = get_backend(backend)
    xp = be.xp
    values = be.asarray(values)
    if values.size == 0:
        return 1.0
    return float(np.asarray(be.to_numpy(xp.sqrt(xp.mean(xp.abs(values) ** 2))))) or 1.0


def normalize_rms(values, backend: ArrayBackend | None = None):
    """Scale an array to unit RMS; returns ``(values / scale, scale)``."""
    be = get_backend(backend)
    values = be.asarray(values)
    scale = rms(values, backend=be)
    return values / scale, scale
