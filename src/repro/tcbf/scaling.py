"""Operand normalization for the tensor-core data path.

float16 inputs must stay inside half range and 1-bit inputs are scale-free,
so the beamformer normalizes the streaming operand to unit RMS before the
GEMM and (optionally) restores the scale afterwards. The correct statistic
is the root-mean-square of the complex magnitudes,

    rms(x) = sqrt(mean(|x|^2)),

*not* ``np.abs(x).std()`` (the standard deviation of the magnitudes): for a
nonzero-mean signal the std under-estimates the energy and the operand would
be mis-scaled. Both applications previously hand-rolled the std variant;
this module is the single corrected implementation.
"""

from __future__ import annotations

import numpy as np


def rms(values: np.ndarray) -> float:
    """Root-mean-square magnitude ``sqrt(mean(|x|^2))`` of a complex array.

    Returns 1.0 for an all-zero (or empty) input so callers can divide by it
    unconditionally.
    """
    values = np.asarray(values)
    if values.size == 0:
        return 1.0
    return float(np.sqrt(np.mean(np.abs(values) ** 2))) or 1.0


def normalize_rms(values: np.ndarray) -> tuple[np.ndarray, float]:
    """Scale an array to unit RMS; returns ``(values / scale, scale)``."""
    scale = rms(values)
    return values / scale, scale
