"""The domain-level Tensor-Core Beamformer plan.

The paper's headline artifact is a beamformer library that "hides the
complexities of tensor-core programming": the user states the beamforming
problem — beams M x receivers K x samples N, optionally batched over
channels x polarizations — and the library composes ccglib's transpose,
packing, quantization/scaling and GEMM stages underneath
(paper §V: both the ultrasound and the LOFAR beamformer are "a wrapper
around ccglib").

:class:`BeamformerPlan` is that composition point. Unlike the raw
:class:`~repro.ccglib.gemm.Gemm` plan it accounts costs **end-to-end**: the
per-block total includes the streaming-operand transpose and (for int1) the
packing kernel, not just the GEMM — the accounting of the paper's Fig 5
("The processing includes the 1-bit packing and transpose of the measurement
matrix"). Applications where data are already GPU-resident in GEMM layout
(the LOFAR central beamformer, §V-B) disable those stages and the total
collapses to the GEMM cost alone.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.ccglib.gemm import Gemm
from repro.ccglib.layouts import ensure_batched
from repro.ccglib.packing import packing_cost, run_pack_kernel
from repro.ccglib.precision import Precision, traits
from repro.ccglib.transpose import run_transpose_kernel, transpose_cost
from repro.ccglib.tuning import TuneParams
from repro.errors import ShapeError
from repro.gpusim.arch import BitOp, FragmentShape
from repro.gpusim.device import Device
from repro.gpusim.timing import KernelCost, combine_costs
from repro.tcbf.result import BeamformResult
from repro.tcbf.scaling import rms

#: bytes per real-valued component of the unquantized host operand.
_HOST_BYTES_PER_VALUE = 4.0


class BeamformerPlan:
    """A beamforming problem bound to a device, streaming stages included.

    Parameters
    ----------
    device:
        Target :class:`~repro.gpusim.device.Device` (functional or dry-run).
    n_beams, n_receivers, n_samples:
        The GEMM mapping of the paper: "M represents the number of beams
        ... N is the number of samples ... K corresponds to the number of
        stations" (§V-B) — or voxels/frequencies·transceivers/frames for
        ultrasound (§V-A).
    batch:
        Independent problems per block (channels x polarizations for LOFAR).
    precision:
        Any supported :class:`~repro.ccglib.precision.Precision`.
    include_transpose:
        Charge the per-block transpose of the streaming (B) operand. Off
        when data arrive already tiled/K-major (GPU-resident pipelines) or
        when an interleaved-input GEMM is used (§VI future work).
    include_packing:
        Charge the per-block 1-bit packing of the streaming operand;
        defaults to ``precision is INT1``. Meaningless (and forced off) for
        float precisions.
    restore_output_scale:
        Multiply the output by the operand RMS again after the GEMM. On for
        absolute-calibrated pipelines (LOFAR); off for scale-invariant
        imaging (ultrasound power Doppler).
    backend:
        Array-execution backend for the functional path (name, instance, or
        ``None`` for the NumPy reference). The whole pipeline — RMS
        normalization, pack, transpose, GEMM, scale restore — runs in this
        backend's namespace; outputs stay on its device.
    name:
        Label of the combined multi-stage cost record.
    """

    def __init__(
        self,
        device: Device,
        *,
        n_beams: int,
        n_receivers: int,
        n_samples: int,
        batch: int = 1,
        precision: Precision = Precision.FLOAT16,
        params: TuneParams | None = None,
        bit_op: BitOp | None = None,
        fragment: FragmentShape | None = None,
        experimental_ok: bool = False,
        include_transpose: bool = True,
        include_packing: bool | None = None,
        restore_output_scale: bool = False,
        backend: ArrayBackend | str | None = None,
        name: str = "beamform_block",
    ):
        self.device = device
        self.backend = get_backend(backend)
        self.n_beams = n_beams
        self.n_receivers = n_receivers
        self.n_samples = n_samples
        self.batch = batch
        self.precision = precision
        self.include_transpose = include_transpose
        if include_packing is None:
            include_packing = precision is Precision.INT1
        self.include_packing = include_packing and precision is Precision.INT1
        self.restore_output_scale = restore_output_scale
        self.name = name
        self._gemm = Gemm(
            device,
            precision,
            batch=batch,
            m=n_beams,
            n=n_samples,
            k=n_receivers,
            params=params,
            bit_op=bit_op,
            fragment=fragment,
            experimental_ok=experimental_ok,
            backend=self.backend,
        )
        #: one-time weight/filter preparation cost (set by prepare_weights).
        self.weight_prep_cost: KernelCost | None = None

    # -- introspection -------------------------------------------------------

    @property
    def params(self) -> TuneParams:
        """Tuning parameters the underlying GEMM resolved for this shape."""
        return self._gemm.params

    @property
    def cache_key(self) -> tuple:
        """Hashable identity of this built plan (cache ground truth).

        Two plans with equal keys predict identical costs and accept the
        same operands: device, shape, precision, resolved tuning
        parameters, and every stage-inclusion flag participate. Caching
        layers that key on pre-build descriptors — the serving tier's
        :class:`~repro.serve.cache.PlanCache` derives its key from
        :meth:`Workload.compat_key <repro.serve.workload.Workload.compat_key>`
        before any plan exists — use this property to cross-check that
        distinct entries really hold distinct plans.
        """
        return (
            self.device.name,
            self.batch,
            self.n_beams,
            self.n_receivers,
            self.n_samples,
            self.precision.value,
            self.params,
            self.include_transpose,
            self.include_packing,
            self.restore_output_scale,
            self.backend.name,
        )

    @property
    def padded_k(self) -> int:
        return self._gemm.padded_k

    @property
    def shape(self) -> tuple[int, int, int, int]:
        """(batch, n_beams, n_receivers, n_samples)."""
        return (self.batch, self.n_beams, self.n_receivers, self.n_samples)

    #: number of real values in one streaming (B) operand block.
    @property
    def _stream_values(self) -> int:
        return 2 * self.batch * self.n_receivers * self.n_samples

    def predict_gemm_cost(self) -> KernelCost:
        """GEMM-only cost prediction (the paper's Fig 7 accounting)."""
        return self._gemm.predict_cost()

    @property
    def needs_scale(self) -> bool:
        """Whether execution normalizes the operand by its RMS.

        Sign quantization is invariant under positive scaling, so a
        non-restoring int1 plan skips the normalization entirely; the
        sharding layer reads this to stay in lockstep.
        """
        return self.restore_output_scale or self.precision is not Precision.INT1

    def _stage_in_costs(self) -> list[KernelCost]:
        """The per-block streaming stage costs, in execution order.

        Single source of the transpose/packing stage selection: both the
        prediction path (:meth:`stage_in_cost`) and the recording path
        (:meth:`execute`) consume this list.
        """
        costs: list[KernelCost] = []
        tr = traits(self.precision)
        if self.include_transpose:
            costs.append(transpose_cost(self.device, self._stream_values, tr.input_bytes))
        if self.include_packing:
            costs.append(packing_cost(self.device, self._stream_values, _HOST_BYTES_PER_VALUE))
        return costs

    def stage_in_cost(self) -> KernelCost | None:
        """Combined cost of the per-block streaming stages (transpose+pack).

        ``None`` when the plan charges no streaming stage (GPU-resident
        data); this is also the copy-side time the streaming executor
        overlaps with the previous block's GEMM.
        """
        costs = self._stage_in_costs()
        if not costs:
            return None
        if len(costs) == 1:
            return costs[0]
        return combine_costs("stage_in", costs)

    def predict_block_cost(self) -> KernelCost:
        """End-to-end cost of one block: transpose + packing + GEMM.

        This is what distinguishes the beamformer-level accounting from the
        GEMM-level one: the streaming helper kernels are part of the block
        budget (Fig 5), not an afterthought.
        """
        stage_in = self.stage_in_cost()
        gemm = self.predict_gemm_cost()
        if stage_in is None:
            return gemm
        return combine_costs(self.name, [stage_in, gemm])

    # -- one-time weight preparation ----------------------------------------

    @property
    def _weight_values(self) -> int:
        """Real values in the A operand (weights / matched filter)."""
        return 2 * self.batch * self.n_beams * self.n_receivers

    def predict_weight_prep_cost(self, name: str = "weight_prep") -> KernelCost:
        """Pure prediction of :meth:`prepare_weights` — nothing recorded.

        Placement layers price the cold-start (plan build + one-time weight
        preparation) of candidate devices they may never dispatch to; this
        keeps those what-if estimates off the device timeline.
        """
        tr = traits(self.precision)
        costs = [transpose_cost(self.device, self._weight_values, tr.input_bytes)]
        if self.precision is Precision.INT1:
            costs.append(packing_cost(self.device, self._weight_values, _HOST_BYTES_PER_VALUE))
        return combine_costs(name, costs)

    def prepare_weights(
        self, values_planar: np.ndarray | None = None, name: str = "weight_prep"
    ) -> KernelCost:
        """One-time preparation of the A operand (weights / matched filter).

        Tiling transpose plus — for int1 — sign packing at the GEMM's padded
        K. Recorded on the device timeline but kept out of the per-block
        budget: "this typically happens once before the experiment and does
        not need to be repeated" (paper §V-A).
        """
        n_values = self._weight_values
        tr = traits(self.precision)
        costs: list[KernelCost] = []
        _, t_cost = run_transpose_kernel(self.device, None, n_values, tr.input_bytes)
        costs.append(t_cost)
        if self.precision is Precision.INT1:
            _, p_cost = run_pack_kernel(
                self.device,
                values_planar,
                n_values,
                input_bytes_per_value=_HOST_BYTES_PER_VALUE,
                k_pad_to=self.padded_k,
                backend=self.backend,
            )
            costs.append(p_cost)
        self.weight_prep_cost = combine_costs(name, costs)
        return self.weight_prep_cost

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        weights: np.ndarray | None = None,
        data: np.ndarray | None = None,
        *,
        scale: float | None = None,
    ) -> BeamformResult:
        """Beamform one block: ``out[b] = weights[b] @ data[b]``.

        ``weights``: (batch, n_beams, n_receivers) complex (2-D allowed when
        ``batch == 1``); ``data``: (batch, n_receivers, n_samples) complex.
        Both are required in functional mode and ignored in dry-run. Records
        every charged stage on the device timeline in execution order and
        returns the end-to-end :class:`~repro.tcbf.result.BeamformResult`.

        ``scale`` overrides the automatic unit-RMS operand normalization —
        the sharding layer passes one global scale so every shard of a
        block normalizes identically.
        """
        if self.device.is_functional:
            weights = self._prepared_weights(weights)
            data = self._validated_data(data)
        # Per-block streaming stages (cost accounting only: the functional
        # data movement happens inside the GEMM plan, which consumes the
        # interleaved host layout directly).
        costs = self._stage_in_costs()
        for stage in costs:
            self.device.record_kernel(stage)
        output = None
        if self.device.is_functional:
            be = self.backend
            if self.needs_scale and scale is None:
                scale = rms(data, backend=be)
            # Skip the divide for pre-normalized data (scale 1.0) and the
            # cast for complex64 inputs: no hidden full-block copies.
            normalized = (
                data if not self.needs_scale or scale == 1.0 else data / scale
            )
            gemm_result = self._gemm.run(weights, be.astype(normalized, be.xp.complex64))
            output = gemm_result.output
            if self.restore_output_scale and scale != 1.0:
                output = output * scale
        else:
            gemm_result = self._gemm.run()
        costs.append(gemm_result.cost)
        total = costs[0] if len(costs) == 1 else combine_costs(self.name, costs)
        return BeamformResult(
            output=output,
            costs=costs,
            total=total,
            n_frames=self.n_samples,
            backend=self.backend,
        )

    # -- internals -----------------------------------------------------------

    def _prepared_weights(self, weights: Any | None) -> Any:
        """Validate and convert the A operand.

        ``copy=False`` makes the conversion free for complex64 inputs (the
        common case for a weight set reused across streamed blocks) while
        still re-reading the array every call, so in-place weight updates
        between blocks are honored.
        """
        if weights is None:
            raise ShapeError("functional beamforming requires weights and data")
        be = self.backend
        batched, _ = ensure_batched(be.asarray(weights), 3, backend=be)
        expect_w = (self.batch, self.n_beams, self.n_receivers)
        if batched.shape != expect_w:
            raise ShapeError(f"weights must be {expect_w}, got {batched.shape}")
        return be.astype(batched, be.xp.complex64)

    def _validated_data(self, data: Any | None) -> Any:
        """Shape-check the streaming operand before any cost is recorded."""
        if data is None:
            raise ShapeError("functional beamforming requires weights and data")
        data, _ = ensure_batched(self.backend.asarray(data), 3, backend=self.backend)
        expect_d = (self.batch, self.n_receivers, self.n_samples)
        if data.shape != expect_d:
            raise ShapeError(f"data must be {expect_d}, got {data.shape}")
        return data
