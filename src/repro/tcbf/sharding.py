"""Multi-device beamforming: shard one problem across several GPUs.

The roadmap scenario beyond the paper: a telescope with more channels (or an
imaging volume with more voxels) than one GPU can beamform in real time.
Two axes shard naturally:

* ``batch`` — the channels x polarizations batch is embarrassingly parallel
  (each device beamforms a disjoint channel range with the full weight set);
* ``beams`` — the M axis splits the weight matrix, every device sees all
  input samples but forms a disjoint beam range (useful when a single batch
  item is too large).

:class:`ShardedBeamformer` builds one :class:`~repro.tcbf.plan.BeamformerPlan`
per device, executes the shards, and aggregates the per-device timelines:
the modelled wall time of a block is the slowest shard (devices run
concurrently), so aggregate throughput is total useful ops over that
maximum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.ccglib.layouts import ensure_batched
from repro.ccglib.precision import Precision
from repro.ccglib.tuning import TuneParams
from repro.errors import DeviceError, ShapeError
from repro.gpusim.arch import BitOp, FragmentShape
from repro.gpusim.device import Device
from repro.gpusim.timing import KernelCost
from repro.tcbf.plan import BeamformerPlan
from repro.tcbf.result import BeamformResult
from repro.tcbf.scaling import rms
from repro.util.units import tera

#: dimensions a beamforming problem can be sharded along.
SHARD_DIMS = ("batch", "beams")


def split_extent(total: int, parts: int) -> list[int]:
    """Near-equal split of ``total`` units over ``parts`` shards.

    The first ``total % parts`` shards get one extra unit; every shard is
    non-empty (raises :class:`ShapeError` otherwise).
    """
    if parts < 1:
        raise ShapeError(f"need at least one shard, got {parts}")
    if total < parts:
        raise ShapeError(f"cannot split {total} units over {parts} devices")
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def split_extent_weighted(total: int, weights: Sequence[float]) -> list[int]:
    """Capacity-proportional split of ``total`` units over weighted shards.

    Largest-remainder rounding, deterministic (remainder ties go to the
    lowest index), every shard non-empty. The heterogeneous-fleet
    counterpart of :func:`split_extent`: a device with twice the memory (or
    throughput) weight takes twice the extent, which is what lets a
    GH200 + MI300X pair host a problem an equal split would overflow on
    the smaller device.
    """
    if not weights:
        raise ShapeError("need at least one shard weight")
    if any(w <= 0 for w in weights):
        raise ShapeError(f"shard weights must be positive, got {list(weights)}")
    parts = len(weights)
    if total < parts:
        raise ShapeError(f"cannot split {total} units over {parts} devices")
    wsum = float(sum(weights))
    raw = [total * w / wsum for w in weights]
    extents = [int(r) for r in raw]
    order = sorted(range(parts), key=lambda i: (-(raw[i] - extents[i]), i))
    for i in order[: total - sum(extents)]:
        extents[i] += 1
    # A vanishing weight share can round to zero; steal a unit from the
    # largest shard (ties: lowest index) so every device gets real work.
    for i in range(parts):
        while extents[i] < 1:
            donor = max(range(parts), key=lambda k: (extents[k], -k))
            extents[donor] -= 1
            extents[i] += 1
    return extents


def build_shard_plans(
    devices: Sequence[Device],
    shard_sizes: Sequence[int],
    *,
    n_beams: int,
    n_receivers: int,
    n_samples: int,
    batch: int = 1,
    precision: Precision = Precision.FLOAT16,
    shard_dim: str = "batch",
    params: TuneParams | None = None,
    bit_op: BitOp | None = None,
    fragment: FragmentShape | None = None,
    experimental_ok: bool = False,
    include_transpose: bool = True,
    include_packing: bool | None = None,
    restore_output_scale: bool = False,
    backend: ArrayBackend | str | None = None,
    name: str = "beamform_block",
) -> list[BeamformerPlan]:
    """One :class:`BeamformerPlan` per device for a sharded problem.

    ``shard_sizes`` gives each device's extent along ``shard_dim`` (usually
    from :func:`split_extent`); every other problem parameter is shared.
    This is the single source of shard-plan construction: the offline
    :class:`ShardedBeamformer` and the serving tier's in-service split path
    (:mod:`repro.serve.placement`) both build their per-device plans here,
    so the two tiers can never drift on how a shard is shaped.
    """
    if shard_dim not in SHARD_DIMS:
        raise ShapeError(f"shard_dim must be one of {SHARD_DIMS}, got {shard_dim!r}")
    if len(devices) != len(shard_sizes):
        raise ShapeError(f"{len(shard_sizes)} shard sizes for {len(devices)} devices")
    plans = []
    for device, size in zip(devices, shard_sizes):
        plans.append(
            BeamformerPlan(
                device,
                n_beams=size if shard_dim == "beams" else n_beams,
                n_receivers=n_receivers,
                n_samples=n_samples,
                batch=size if shard_dim == "batch" else batch,
                precision=precision,
                params=params,
                bit_op=bit_op,
                fragment=fragment,
                experimental_ok=experimental_ok,
                include_transpose=include_transpose,
                include_packing=include_packing,
                restore_output_scale=restore_output_scale,
                backend=backend,
                name=name,
            )
        )
    return plans


def merge_batch_operands(
    weights: Any,
    data_blocks: Sequence[Any],
    backend: ArrayBackend | None = None,
) -> tuple[Any, Any]:
    """Stack compatible per-request operands into one batched GEMM block.

    The inverse direction of sharding: several small requests that share one
    weight set (same calibration / matched filter) coalesce into a single
    :class:`~repro.tcbf.plan.BeamformerPlan` execution with
    ``batch = n_requests * per_request_batch``. ``weights`` is the shared
    per-request A operand ``(b, M, K)`` (2-D allowed when ``b == 1``) and is
    repeated once per request; ``data_blocks`` holds each request's B operand
    ``(b, K, N)``. The merged output splits back per request with
    :func:`split_batched_output`.
    """
    if not data_blocks:
        raise ShapeError("cannot merge an empty request list")
    be = get_backend(backend)
    weights, _ = ensure_batched(be.asarray(weights), 3, backend=be)
    blocks = []
    for block in data_blocks:
        block, _ = ensure_batched(be.asarray(block), 3, backend=be)
        if block.shape[0] != weights.shape[0] or block.shape[1] != weights.shape[2]:
            raise ShapeError(
                f"request block {block.shape} incompatible with weights "
                f"{weights.shape}: per-request batch and K must match"
            )
        blocks.append(block)
    if len({b.shape for b in blocks}) > 1:
        raise ShapeError(f"cannot merge blocks of differing shapes: {[b.shape for b in blocks]}")
    merged_weights = be.xp.concatenate([weights] * len(blocks), axis=0)
    merged_data = be.xp.concatenate(blocks, axis=0)
    return merged_weights, merged_data


def split_batched_output(
    output: Any,
    extents: Sequence[int],
    axis: int = 0,
    backend: ArrayBackend | None = None,
) -> list[Any]:
    """Scatter a merged batch output back into per-request slices.

    ``extents`` are the batch extents of the coalesced requests in merge
    order; they must exactly cover ``output`` along ``axis``. Returns one
    view per request (no copies), so the serving layer can hand each caller
    its own result without duplicating the block.
    """
    if not extents:
        raise ShapeError("cannot split over an empty extent list")
    if any(e < 1 for e in extents):
        raise ShapeError(f"extents must be positive, got {list(extents)}")
    total = sum(extents)
    if output.shape[axis] != total:
        raise ShapeError(
            f"extents sum to {total} but output has {output.shape[axis]} "
            f"along axis {axis}"
        )
    be = get_backend(backend)
    bounds = [int(b) for b in np.cumsum(list(extents))[:-1]]
    return be.xp.split(output, bounds, axis=axis)


@dataclass
class ShardResult:
    """Outcome of one multi-device beamformed block.

    ``output`` is the merged result (concatenated along the sharded axis);
    ``shards`` holds each device's own :class:`BeamformResult`. Devices run
    concurrently, so the block's wall time is the slowest shard — the basis
    of every aggregate throughput accessor.
    """

    output: Any | None
    shards: list[BeamformResult]
    shard_dim: str
    shard_sizes: list[int]

    @property
    def wall_time_s(self) -> float:
        """Modelled block latency: the slowest device's end-to-end time."""
        return max(s.total.time_s for s in self.shards)

    @property
    def useful_ops(self) -> float:
        """Application-level GEMM operations across all shards.

        Helper-kernel element moves are excluded, matching the GEMM-only
        numerators of ``BeamformResult.tflops`` and ``StreamStats``.
        """
        return sum(s.gemm_cost.useful_ops for s in self.shards)

    @property
    def energy_j(self) -> float:
        return sum(s.total.energy_j for s in self.shards)

    @property
    def ops_per_second(self) -> float:
        """Aggregate throughput: all shards' useful ops over the wall time."""
        return self.useful_ops / self.wall_time_s if self.wall_time_s > 0 else 0.0

    @property
    def tflops(self) -> float:
        return self.ops_per_second / tera

    @property
    def load_balance(self) -> float:
        """mean / max shard time — 1.0 means a perfectly even split."""
        times = [s.total.time_s for s in self.shards]
        return (sum(times) / len(times)) / max(times) if max(times) > 0 else 1.0


class ShardedBeamformer:
    """One beamforming problem spread over several (simulated) devices.

    Accepts the same problem description as :class:`BeamformerPlan` plus the
    device list and the shard dimension; every stage-inclusion flag is
    forwarded to the per-device plans, so sharded LOFAR (GEMM-only
    accounting) and sharded ultrasound (transpose+pack included) both work.
    """

    def __init__(
        self,
        devices: Sequence[Device],
        *,
        n_beams: int,
        n_receivers: int,
        n_samples: int,
        batch: int = 1,
        precision: Precision = Precision.FLOAT16,
        shard_dim: str = "batch",
        params: TuneParams | None = None,
        bit_op: BitOp | None = None,
        fragment: FragmentShape | None = None,
        experimental_ok: bool = False,
        include_transpose: bool = True,
        include_packing: bool | None = None,
        restore_output_scale: bool = False,
        backend: ArrayBackend | str | None = None,
        name: str = "beamform_block",
    ):
        if not devices:
            raise ShapeError("sharding requires at least one device")
        if shard_dim not in SHARD_DIMS:
            raise ShapeError(f"shard_dim must be one of {SHARD_DIMS}, got {shard_dim!r}")
        if len({device.is_functional for device in devices}) > 1:
            # A mixed fleet would silently drop the functional shards'
            # outputs (dry-run shards produce none to merge).
            raise DeviceError(
                "sharded devices must share one execution mode; "
                "got a mix of functional and dry-run"
            )
        self.devices = list(devices)
        self.backend = get_backend(backend)
        self.shard_dim = shard_dim
        self.restore_output_scale = restore_output_scale
        self.n_beams = n_beams
        self.n_receivers = n_receivers
        self.n_samples = n_samples
        self.batch = batch
        self.precision = precision
        total = batch if shard_dim == "batch" else n_beams
        self.shard_sizes = split_extent(total, len(self.devices))
        self.plans = build_shard_plans(
            self.devices,
            self.shard_sizes,
            n_beams=n_beams,
            n_receivers=n_receivers,
            n_samples=n_samples,
            batch=batch,
            precision=precision,
            shard_dim=shard_dim,
            params=params,
            bit_op=bit_op,
            fragment=fragment,
            experimental_ok=experimental_ok,
            include_transpose=include_transpose,
            include_packing=include_packing,
            restore_output_scale=restore_output_scale,
            backend=self.backend,
            name=name,
        )

    # -- prediction ----------------------------------------------------------

    def predict_block_cost(self) -> list[KernelCost]:
        """Per-shard end-to-end block cost (nothing recorded)."""
        return [plan.predict_block_cost() for plan in self.plans]

    def predicted_throughput(self) -> float:
        """Aggregate modelled ops/s: total GEMM ops over the slowest shard.

        The denominator is the end-to-end block time (stages included), the
        numerator the GEMM operations only — consistent with
        ``ShardResult.ops_per_second`` and the single-device metrics.
        """
        gemm_ops = sum(plan.predict_gemm_cost().useful_ops for plan in self.plans)
        return gemm_ops / max(c.time_s for c in self.predict_block_cost())

    # -- execution -----------------------------------------------------------

    def execute(self, weights: Any | None = None, data: Any | None = None) -> ShardResult:
        """Beamform one block across all devices and merge the outputs.

        Functional mode slices the operands per shard — disjoint batch
        ranges (full weights and data rows per range) for ``batch``
        sharding, disjoint weight rows with the full data for ``beams``
        sharding — and concatenates the shard outputs back along the same
        axis. Dry-run devices record their shard's timeline only.
        """
        shards: list[BeamformResult] = []
        be = self.backend
        offset = 0
        scale = None
        shared_data = None
        functional = self.devices[0].is_functional  # fleet mode is homogeneous
        if not functional:
            # Dry-run shards ignore operands (like the single-device plan),
            # so skip the full-block normalization pass and copies.
            weights = data = None
        if weights is not None and data is not None:
            # Validate against the full problem shape before slicing: the
            # per-shard plans only see their slice, so without this an
            # oversized operand would be silently truncated instead of
            # rejected like the single-device plan does.
            weights, _ = ensure_batched(be.asarray(weights), 3, backend=be)
            data, _ = ensure_batched(be.asarray(data), 3, backend=be)
            expect_w = (self.batch, self.n_beams, self.n_receivers)
            expect_d = (self.batch, self.n_receivers, self.n_samples)
            if weights.shape != expect_w:
                raise ShapeError(f"weights must be {expect_w}, got {weights.shape}")
            if data.shape != expect_d:
                raise ShapeError(f"data must be {expect_d}, got {data.shape}")
            # One global normalization for the whole block: per-shard RMS
            # would scale each batch slice differently and corrupt relative
            # amplitudes across the merged output. Skipped entirely when the
            # plans skip it too (int1 without output-scale restore).
            needs_scale = self.plans[0].needs_scale
            if needs_scale:
                scale = rms(data, backend=be)
            if self.shard_dim == "beams":
                # Every shard consumes the identical full data block, so
                # normalize it once instead of once per device.
                shared_data = data
                if needs_scale:
                    shared_data = be.astype(data / scale, be.xp.complex64)
        for plan, size in zip(self.plans, self.shard_sizes):
            w_shard = d_shard = None
            shard_scale = None
            if weights is not None and data is not None:
                if self.shard_dim == "batch":
                    w_shard = weights[offset : offset + size]
                    d_shard = data[offset : offset + size]
                    shard_scale = scale
                else:
                    w_shard = weights[..., offset : offset + size, :]
                    d_shard = shared_data
                    shard_scale = 1.0  # already normalized (or scale-free)
            result = plan.execute(w_shard, d_shard, scale=shard_scale)
            if (
                self.shard_dim == "beams"
                and self.restore_output_scale
                and result.output is not None
                and scale is not None
                and scale != 1.0
            ):
                # Beams-mode plans saw pre-normalized data (unit scale), so
                # restore the true scale here.
                result.output = result.output * scale
            shards.append(result)
            offset += size
        output = None
        if all(s.output is not None for s in shards):
            axis = 0 if self.shard_dim == "batch" else 1
            output = be.xp.concatenate([s.output for s in shards], axis=axis)
        return ShardResult(
            output=output,
            shards=shards,
            shard_dim=self.shard_dim,
            shard_sizes=list(self.shard_sizes),
        )
