"""The Tensor-Core Beamformer (TCBF): the paper's unified beamformer library.

One domain-level API over ccglib for every beamforming workload ("hides the
complexities of tensor-core programming ... for multidisciplinary use"):

* :class:`~repro.tcbf.plan.BeamformerPlan` — a beams x receivers x samples
  (x batch) problem bound to a device, composing transpose, 1-bit packing,
  RMS scaling, and the complex GEMM with end-to-end cost accounting;
* :class:`~repro.tcbf.result.BeamformResult` — the shared result record
  (``beams``/``frames`` aliases, ``tflops``/``fps`` throughput accessors);
* :class:`~repro.tcbf.streaming.BlockExecutor` — continuous block streaming
  with cross-block copy/compute overlap on the kernel pipeline's
  commit/wait protocol;
* :class:`~repro.tcbf.sharding.ShardedBeamformer` — batch- or beam-dimension
  sharding across multiple devices with aggregate-throughput accounting.

The domain applications (:mod:`repro.apps.radioastronomy`,
:mod:`repro.apps.ultrasound`) are thin adapters over this package.
"""

from repro.tcbf.plan import BeamformerPlan
from repro.tcbf.result import BeamformResult
from repro.tcbf.scaling import normalize_rms, rms
from repro.tcbf.sharding import (
    ShardedBeamformer,
    ShardResult,
    build_shard_plans,
    merge_batch_operands,
    split_batched_output,
    split_extent,
    split_extent_weighted,
)
from repro.tcbf.streaming import BlockExecutor, StreamStats, pipelined_makespan

__all__ = [
    "BeamformerPlan",
    "BeamformResult",
    "BlockExecutor",
    "StreamStats",
    "ShardedBeamformer",
    "ShardResult",
    "split_extent",
    "split_extent_weighted",
    "build_shard_plans",
    "merge_batch_operands",
    "split_batched_output",
    "pipelined_makespan",
    "rms",
    "normalize_rms",
]
