"""Streaming block execution with cross-block copy/compute overlap.

A real-time beamformer does not see one matrix: it sees an endless sequence
of data blocks. Within a kernel, ccglib already overlaps async copies with
tensor-core math through its multi-stage buffer (paper §III-C); this module
lifts the same producer/consumer discipline one level up, so the transpose +
packing of block *i+1* ("stage-in", the copy side) overlaps the GEMM of
block *i* (the compute side).

:class:`BlockExecutor` reuses :class:`~repro.ccglib.pipeline.MultiStageBuffer`
for the protocol — blocks must be consumed in submission order, at most
``num_buffers`` blocks may be in flight, and violations raise
:class:`~repro.errors.KernelConfigError` exactly like the kernel-level
pipeline. The pipelined makespan comes from a small event model over the two
"engines" (copy, compute): with one buffer the schedule degenerates to
serial execution, mirroring the AMD no-async-copies case.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.ccglib.pipeline import MultiStageBuffer
from repro.errors import KernelConfigError
from repro.tcbf.plan import BeamformerPlan
from repro.tcbf.result import BeamformResult
from repro.util.units import tera


@dataclass(frozen=True)
class StreamStats:
    """Aggregate timing of a streamed block sequence.

    ``serial_time_s`` is the no-overlap sum of every stage;
    ``pipelined_time_s`` is the modelled makespan with stage-in/GEMM overlap
    across blocks (equal to serial when ``num_buffers == 1``).
    """

    num_blocks: int
    num_buffers: int
    n_frames_per_block: int
    serial_time_s: float
    pipelined_time_s: float
    stage_in_time_s: float
    compute_time_s: float
    #: application-level GEMM operations across all blocks (helper-kernel
    #: element moves excluded).
    useful_ops: float

    @property
    def overlap_speedup(self) -> float:
        """serial / pipelined — 1.0 means no overlap was won."""
        if self.pipelined_time_s <= 0:
            return 1.0
        return self.serial_time_s / self.pipelined_time_s

    @property
    def blocks_per_second(self) -> float:
        return self.num_blocks / self.pipelined_time_s if self.pipelined_time_s > 0 else 0.0

    @property
    def fps(self) -> float:
        """Sustained frames (samples) per second across the whole stream."""
        return self.blocks_per_second * self.n_frames_per_block

    @property
    def tflops(self) -> float:
        """Sustained useful throughput over the pipelined makespan."""
        return self.useful_ops / self.pipelined_time_s / tera if self.pipelined_time_s > 0 else 0.0


class BlockExecutor:
    """Pipelines data blocks through a :class:`BeamformerPlan`.

    ``submit`` stages a block (producer acquire + commit); ``collect``
    consumes the oldest staged block (consumer wait + release) and runs the
    plan on it. Submitting more than ``num_buffers`` blocks without
    collecting overruns the stage ring and raises
    :class:`~repro.errors.KernelConfigError`, as does collecting from an
    empty pipeline — the same protocol the in-kernel pipeline enforces.

    Per-block history (``consumed``, the timing lists behind :meth:`stats`)
    grows with the stream; a truly unbounded real-time loop should call
    :meth:`reset_stats` at window boundaries to keep it O(window).
    """

    def __init__(self, plan: BeamformerPlan, num_buffers: int = 2):
        self.plan = plan
        self.num_buffers = num_buffers
        self._pipe = MultiStageBuffer(num_buffers)
        self._staged: deque[tuple[int, Any | None, Any | None]] = deque()
        self._next_id = 0
        #: block ids in consumption order (a test invariant: equals submission order).
        self.consumed: list[int] = []
        self._stage_in_times: list[float] = []
        self._compute_times: list[float] = []
        self._gemm_ops: list[float] = []

    @property
    def blocks_in_flight(self) -> int:
        return self._pipe.stages_in_flight

    def submit(self, weights: Any | None = None, data: Any | None = None) -> int:
        """Stage one block for execution; returns its sequence id."""
        idx = self._pipe.producer_acquire(self._next_id)
        self._pipe.producer_commit(idx)
        self._staged.append((self._next_id, weights, data))
        self._next_id += 1
        return self._next_id - 1

    def collect(self) -> BeamformResult:
        """Execute and return the oldest staged block (submission order)."""
        chunk_id = self._pipe.consumer_wait()
        block_id, weights, data = self._staged[0]
        if block_id != chunk_id:
            raise KernelConfigError(
                f"pipeline consumed block {chunk_id} but block {block_id} was next"
            )
        # Execute before releasing the stage: a rejected block (shape error)
        # must stay staged so the executor state and stats remain consistent.
        result = self.plan.execute(weights, data)
        self._pipe.consumer_release()
        self._staged.popleft()
        self.consumed.append(chunk_id)
        gemm = result.gemm_cost
        self._stage_in_times.append(result.total.time_s - gemm.time_s)
        self._compute_times.append(gemm.time_s)
        # Count the GEMM's application-level ops only: transpose/pack report
        # element moves in useful_ops, which are not FLOPs.
        self._gemm_ops.append(gemm.useful_ops)
        return result

    def run_stream(
        self,
        blocks: list[Any | None],
        weights: Any | None = None,
    ) -> tuple[list[BeamformResult], StreamStats]:
        """Software-pipeline a whole block sequence.

        ``blocks`` holds the streaming (B) operand of each block (``None``
        entries for dry-run devices); ``weights`` is the A operand shared by
        every block (beam weights / matched filter change rarely). Prefetches
        up to ``num_buffers`` blocks, then steady-state collect-one /
        submit-one, and returns results in submission order plus the
        aggregate :class:`StreamStats`.
        """
        if self._staged:
            raise KernelConfigError(
                f"run_stream on an executor with {len(self._staged)} manually "
                "staged block(s): collect them first, or stream everything "
                "through run_stream"
            )
        results: list[BeamformResult] = []
        n_blocks = len(blocks)
        first_block = len(self._compute_times)
        submitted = 0
        for _ in range(min(self.num_buffers, n_blocks)):
            self.submit(weights, blocks[submitted])
            submitted += 1
        while len(results) < n_blocks:
            results.append(self.collect())
            if submitted < n_blocks:
                self.submit(weights, blocks[submitted])
                submitted += 1
        return results, self.stats(start_block=first_block)

    def discard(self) -> int:
        """Drop the oldest staged block without executing it.

        The error-recovery path for a block :meth:`collect` rejected (e.g.
        shape validation failure): releases its pipeline stage and returns
        its id, leaving it out of ``consumed`` and the stats. Raises
        :class:`~repro.errors.KernelConfigError` on an empty pipeline.
        """
        chunk_id = self._pipe.consumer_wait()
        self._pipe.consumer_release()
        self._staged.popleft()
        return chunk_id

    def reset_stats(self) -> None:
        """Drop the collected per-block history (pipeline state is kept).

        For endless streams: call at reporting-window boundaries so memory
        stays bounded by the window, not the stream.
        """
        self.consumed.clear()
        self._stage_in_times.clear()
        self._compute_times.clear()
        self._gemm_ops.clear()

    def stats(self, start_block: int = 0) -> StreamStats:
        """Timing aggregate over collected blocks.

        By default covers the executor's whole lifetime; ``start_block``
        restricts it to a suffix — ``run_stream`` uses this so a reused
        executor returns stats for its own blocks only.
        """
        stage_in = self._stage_in_times[start_block:]
        compute = self._compute_times[start_block:]
        makespan = pipelined_makespan(stage_in, compute, self.num_buffers)
        return StreamStats(
            num_blocks=len(compute),
            num_buffers=self.num_buffers,
            n_frames_per_block=self.plan.n_samples,
            serial_time_s=sum(stage_in) + sum(compute),
            pipelined_time_s=makespan,
            stage_in_time_s=sum(stage_in),
            compute_time_s=sum(compute),
            useful_ops=sum(self._gemm_ops[start_block:]),
        )


def pipelined_makespan(
    stage_in_times: list[float], compute_times: list[float], num_buffers: int
) -> float:
    """Makespan of an in-order two-engine pipeline with a bounded ring.

    Block *i*'s stage-in may start once the copy engine is free **and** the
    stage ring has room (block ``i - num_buffers`` fully consumed); its GEMM
    starts once its stage-in and the previous GEMM are done. With
    ``num_buffers == 1`` the ring constraint serializes everything — the
    same degeneration the kernel-level pipeline has on AMD.
    """
    if num_buffers < 1:
        raise KernelConfigError(f"num_buffers must be >= 1, got {num_buffers}")
    if len(stage_in_times) != len(compute_times):
        raise ValueError("stage-in and compute time lists must align")
    copy_end: list[float] = []
    compute_end: list[float] = []
    for i, (t_in, t_c) in enumerate(zip(stage_in_times, compute_times)):
        copy_start = copy_end[i - 1] if i > 0 else 0.0
        if i >= num_buffers:
            copy_start = max(copy_start, compute_end[i - num_buffers])
        copy_end.append(copy_start + t_in)
        compute_start = max(copy_end[i], compute_end[i - 1] if i > 0 else 0.0)
        compute_end.append(compute_start + t_c)
    return compute_end[-1] if compute_end else 0.0
