"""The shared beamforming result record.

Both applications used to ship their own result dataclass
(``BeamformOutput`` with a ``tflops`` accessor for LOFAR,
``ReconstructionResult`` with fps-style throughput accounting for
ultrasound). :class:`BeamformResult` unifies them: one output array, the
per-stage kernel costs in execution order, the end-to-end total, and the
domain accessors (``beams``/``frames`` aliases, ``tflops``/``tops``/``fps``)
in a single place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.backend import ArrayBackend
from repro.gpusim.timing import KernelCost
from repro.util.units import tera


@dataclass
class BeamformResult:
    """Outcome of one beamformed block.

    Attributes
    ----------
    output:
        Complex output matrix — ``(batch, n_beams, n_samples)`` from a
        :class:`~repro.tcbf.plan.BeamformerPlan` (domain adapters may strip
        the batch axis). ``None`` in dry-run mode.
    costs:
        Per-kernel costs in execution order (``[transpose,] [pack,] gemm``).
    total:
        End-to-end cost of the block (every recorded stage combined; equals
        the GEMM cost when it is the only stage).
    n_frames:
        Samples/frames produced by this block — the denominator of the
        throughput accessors.
    backend:
        The :class:`~repro.backend.ArrayBackend` that produced ``output``
        (``None`` for legacy/dry-run records). On a non-NumPy backend the
        output stays a device array; use :meth:`output_numpy` to fetch it.
    """

    output: Any | None
    costs: list[KernelCost]
    total: KernelCost
    n_frames: int | None = None
    backend: ArrayBackend | None = None

    def output_numpy(self) -> np.ndarray | None:
        """The output as a host NumPy array (``None`` in dry-run mode)."""
        if self.output is None:
            return None
        if self.backend is not None:
            return self.backend.to_numpy(self.output)
        return np.asarray(self.output)

    # -- domain aliases ------------------------------------------------------

    @property
    def beams(self) -> Any | None:
        """Radio-astronomy view of :attr:`output`."""
        return self.output

    @property
    def frames(self) -> Any | None:
        """Ultrasound view of :attr:`output`."""
        return self.output

    @property
    def cost(self) -> KernelCost:
        """The end-to-end total (kept for the historical LOFAR accessor)."""
        return self.total

    # -- throughput ----------------------------------------------------------

    @property
    def time_s(self) -> float:
        return self.total.time_s

    @property
    def gemm_cost(self) -> KernelCost:
        """The GEMM stage's cost (always the last kernel of a block)."""
        return self.costs[-1]

    @property
    def tflops(self) -> float:
        """Sustained GEMM throughput over the end-to-end block time,
        TFLOPs/s (TOPs/s for int1).

        The numerator is the GEMM's application-level operation count alone:
        the helper kernels report element *moves* in ``useful_ops``, which
        are not FLOPs — mixing them in would inflate the paper's metric.
        """
        if self.total.time_s <= 0:
            return 0.0
        return self.costs[-1].useful_ops / self.total.time_s / tera

    #: int1 kernels report the same quantity as TOPs/s.
    tops = tflops

    @property
    def fps(self) -> float:
        """Sustained frames (samples) per second over the end-to-end cost."""
        if self.n_frames is None:
            raise ValueError("result does not carry a frame count")
        if self.total.time_s <= 0:
            return 0.0
        return self.n_frames / self.total.time_s
