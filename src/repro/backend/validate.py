"""Cross-backend validation harness for the functional execution layer.

Answers one question per backend: *does the full pack -> transpose -> GEMM
pipeline produce the same answers as the NumPy reference?* The harness runs
the real entry points (:func:`repro.ccglib.gemm.gemm_once`,
:func:`repro.ccglib.packing.pack_sign_planar`, ...) on each backend over a
deterministic set of seeded shapes and compares against the NumPy backend
with the per-precision tolerances of
:data:`repro.ccglib.precision.PARITY_TOLERANCES` — exact (bit-for-bit) for
the integer 1-bit path, small float tolerances for float16/TF32 where
backends may legitimately fuse or reorder the arithmetic.

Run it directly (exits non-zero on any failure)::

    PYTHONPATH=src python -m repro.backend.validate            # all backends
    PYTHONPATH=src python -m repro.backend.validate jax        # one backend

CI runs this in the optional-backends job after installing ``jax[cpu]``; a
machine with CuPy + a GPU validates the CUDA path the same way with zero
code changes.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

import numpy as np

from repro.backend import ArrayBackend, available_backends, get_backend, numpy_backend
from repro.backend.conformance import check_backend
from repro.ccglib.bit_gemm import complex_bit_gemm
from repro.ccglib.complex_mma import complex_mma_f16_batched, complex_mma_tf32_batched
from repro.ccglib.layouts import to_planar
from repro.ccglib.packing import pack_sign_planar, unpack_sign_planar
from repro.ccglib.precision import Precision, parity_tolerance
from repro.ccglib.transpose import planar_to_kmajor
from repro.tcbf.scaling import rms
from repro.util.bits import pack_bits, sign_to_bits, unpack_bits

#: (batch, m, n, k) GEMM shapes exercised per backend; quick mode keeps the
#: first two. Deliberately awkward K values so padding paths run too.
_SHAPES = ((1, 8, 4, 16), (2, 16, 8, 33), (3, 7, 5, 100), (1, 32, 16, 257))


@dataclass
class CaseResult:
    """Outcome of one validation case on one backend."""

    case: str
    passed: bool
    max_abs_err: float = 0.0
    detail: str = ""


@dataclass
class ValidationReport:
    """All validation outcomes for one backend."""

    backend: str
    version: str
    cases: list[CaseResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.cases)

    @property
    def failures(self) -> list[CaseResult]:
        return [c for c in self.cases if not c.passed]

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [f"[{status}] backend {self.backend} ({self.version}): "
                 f"{len(self.cases) - len(self.failures)}/{len(self.cases)} cases"]
        for c in self.cases:
            mark = "ok  " if c.passed else "FAIL"
            err = f" max|err|={c.max_abs_err:.3g}" if c.max_abs_err else ""
            tail = f" — {c.detail}" if c.detail and not c.passed else ""
            lines.append(f"  {mark} {c.case}{err}{tail}")
        return "\n".join(lines)


def _compare(
    case: str, got: np.ndarray, want: np.ndarray, rtol: float, atol: float
) -> CaseResult:
    got = np.asarray(got)
    want = np.asarray(want)
    if got.shape != want.shape:
        return CaseResult(case, False, detail=f"shape {got.shape} != {want.shape}")
    if rtol == 0.0 and atol == 0.0:
        if np.array_equal(got, want):
            return CaseResult(case, True)
        err = float(np.max(np.abs(got.astype(np.float64) - want.astype(np.float64))))
        return CaseResult(case, False, max_abs_err=err, detail="exact match required")
    err = float(np.max(np.abs(got - want))) if got.size else 0.0
    if np.allclose(got, want, rtol=rtol, atol=atol):
        return CaseResult(case, True, max_abs_err=err)
    return CaseResult(case, False, max_abs_err=err, detail=f"tolerance rtol={rtol}, atol={atol}")


def validate_backend(
    backend: ArrayBackend | str, quick: bool = False, seed: int = 1234
) -> ValidationReport:
    """Validate one backend against the NumPy reference pipeline."""
    be = get_backend(backend)
    ref = numpy_backend()
    report = ValidationReport(backend=be.name, version=be.version)
    rng = np.random.default_rng(seed)

    for problem in check_backend(be):
        report.cases.append(CaseResult("conformance", False, detail=problem))
    if not report.cases:
        report.cases.append(CaseResult("conformance", True))

    shapes = _SHAPES[:2] if quick else _SHAPES
    for batch, m, n, k in shapes:
        tag = f"b{batch}m{m}n{n}k{k}"
        a = (rng.normal(size=(batch, m, k)) + 1j * rng.normal(size=(batch, m, k))).astype(
            np.complex64
        )
        b = (rng.normal(size=(batch, k, n)) + 1j * rng.normal(size=(batch, k, n))).astype(
            np.complex64
        )
        a_planar = np.asarray(to_planar(a))
        b_planar = np.asarray(to_planar(b))

        # -- bit pack/unpack round-trip: exact on every backend ---------------
        values = rng.normal(size=(batch, 2, m, k)).astype(np.float32)
        bits_ref = np.asarray(sign_to_bits(values))
        words = be.to_numpy(pack_sign_planar(values, k_pad_to=_pad32(k), backend=be))
        words_ref = np.asarray(pack_sign_planar(values, k_pad_to=_pad32(k)))
        report.cases.append(_compare(f"pack/{tag}", words, words_ref, 0.0, 0.0))
        signs = be.to_numpy(unpack_sign_planar(be.asarray(words_ref), k, backend=be))
        report.cases.append(
            _compare(f"unpack/{tag}", signs, bits_ref.astype(np.int8) * 2 - 1, 0.0, 0.0)
        )

        # -- transpose to K-major: a pure reindex, exact ----------------------
        km = be.to_numpy(planar_to_kmajor(b_planar, backend=be))
        report.cases.append(
            _compare(f"transpose/{tag}", km, np.asarray(planar_to_kmajor(b_planar)), 0.0, 0.0)
        )

        # -- 1-bit GEMM: exact integer arithmetic -----------------------------
        aw = pack_sign_planar(a_planar, k_pad_to=_pad32(k), backend=be)
        bw = pack_sign_planar(planar_to_kmajor(b_planar, backend=be), k_pad_to=_pad32(k), backend=be)
        got = be.to_numpy(complex_bit_gemm(aw, bw, k_valid=k, backend=be))
        aw_ref = pack_sign_planar(a_planar, k_pad_to=_pad32(k))
        bw_ref = pack_sign_planar(planar_to_kmajor(b_planar), k_pad_to=_pad32(k))
        want = np.asarray(complex_bit_gemm(aw_ref, bw_ref, k_valid=k))
        tol = parity_tolerance(Precision.INT1)
        report.cases.append(_compare(f"int1-gemm/{tag}", got, want, tol.rtol, tol.atol))

        # -- float16 5-step schedule ------------------------------------------
        got = be.to_numpy(complex_mma_f16_batched(a_planar, b_planar, backend=be))
        want = np.asarray(complex_mma_f16_batched(a_planar, b_planar, backend=ref))
        tol = parity_tolerance(Precision.FLOAT16)
        scale = max(1.0, float(np.max(np.abs(want))))
        report.cases.append(
            _compare(f"f16-gemm/{tag}", got / scale, want / scale, tol.rtol, tol.atol)
        )

        # -- TF32 schedule (bitcast-based quantization) -----------------------
        got = be.to_numpy(complex_mma_tf32_batched(a_planar, b_planar, backend=be))
        want = np.asarray(complex_mma_tf32_batched(a_planar, b_planar, backend=ref))
        tol = parity_tolerance(Precision.TF32)
        report.cases.append(
            _compare(f"tf32-gemm/{tag}", got / scale, want / scale, tol.rtol, tol.atol)
        )

    # -- raw word-level pack/unpack and the RMS reduction ---------------------
    raw_bits = (rng.integers(0, 2, size=(3, 5, 64))).astype(np.uint8)
    got_words = be.to_numpy(pack_bits(raw_bits, axis=-1, backend=be))
    report.cases.append(
        _compare("pack-bits", got_words, np.asarray(pack_bits(raw_bits, axis=-1)), 0.0, 0.0)
    )
    back = be.to_numpy(unpack_bits(be.asarray(got_words), axis=-1, backend=be))
    report.cases.append(_compare("unpack-bits", back, raw_bits, 0.0, 0.0))
    sig = (rng.normal(size=(4, 7, 9)) + 1j * rng.normal(size=(4, 7, 9))).astype(np.complex64)
    got_rms = rms(sig, backend=be)
    report.cases.append(
        _compare("rms", np.float64(got_rms), np.float64(rms(sig)), 1e-6, 1e-9)
    )
    return report


def _pad32(k: int) -> int:
    return -(-k // 32) * 32


def validate_all(quick: bool = False, seed: int = 1234) -> dict[str, ValidationReport]:
    """Validate every backend importable in this environment."""
    return {
        name: validate_backend(name, quick=quick, seed=seed) for name in available_backends()
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code (0 = all backends pass)."""
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    names = [a for a in argv if not a.startswith("-")] or list(available_backends())
    code = 0
    for name in names:
        if name not in available_backends():
            print(f"[SKIP] backend {name}: not available "
                  f"(available: {', '.join(available_backends())})")
            code = 1
            continue
        report = validate_backend(name, quick=quick)
        print(report.summary())
        if not report.ok:
            code = 1
    return code


if __name__ == "__main__":
    raise SystemExit(main())
