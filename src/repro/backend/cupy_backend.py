"""CuPy array backend: the functional data path on a CUDA/ROCm GPU.

Imported lazily by :mod:`repro.backend` — this module must never be
imported unless the user asked for the ``cupy`` backend or probed
availability. Construction fails with :class:`~repro.errors.BackendError`
when CuPy is absent *or* present without a usable device (CuPy imports
fine on GPU-less machines but every allocation fails), so CI machines
without GPUs report it unavailable instead of crashing mid-run.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backend import ArrayBackend
from repro.errors import BackendError


class CupyBackend(ArrayBackend):
    """GPU execution through the ``cupy`` drop-in NumPy namespace."""

    name = "cupy"

    def __init__(self) -> None:
        try:
            import cupy
        except ImportError as exc:
            raise BackendError(f"cupy is not importable: {exc}") from exc
        try:
            if cupy.cuda.runtime.getDeviceCount() < 1:
                raise BackendError("cupy is installed but no CUDA device is visible")
            # One tiny allocation proves the runtime actually works.
            cupy.zeros(1, dtype=cupy.uint32)
        except BackendError:
            raise
        except Exception as exc:  # CUDARuntimeError and friends
            raise BackendError(f"cupy is installed but unusable: {exc}") from exc
        self._cupy = cupy

    @property
    def xp(self) -> Any:
        return self._cupy

    @property
    def version(self) -> str:
        return self._cupy.__version__

    @property
    def device_kind(self) -> str:
        return "gpu"

    def to_numpy(self, values: Any) -> np.ndarray:
        return self._cupy.asnumpy(values)

    def astype(self, values: Any, dtype: Any) -> Any:
        return self._cupy.asarray(values).astype(dtype, copy=False)

    def device_of(self, values: Any) -> str:
        device = getattr(values, "device", None)
        return f"cuda:{device.id}" if device is not None else self.device_kind

    def synchronize(self) -> None:
        self._cupy.cuda.runtime.deviceSynchronize()
