"""JAX array backend: the functional data path through ``jax.numpy``.

Imported lazily by :mod:`repro.backend`. Works on the CPU build
(``pip install jax``) and transparently uses an accelerator when the
installed jaxlib has one. Two JAX-isms the backend papers over:

* arrays are immutable and the default integer width is 32-bit unless
  ``jax_enable_x64`` is set — :meth:`popcount` therefore returns the
  widest integer dtype the runtime allows (int64 under x64, int32
  otherwise), which is why cross-backend comparisons go through the
  per-dtype tolerances of :mod:`repro.backend.validate` rather than
  dtype equality;
* same-width dtype reinterpretation is ``lax.bitcast_convert_type``,
  not ``ndarray.view``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backend import ArrayBackend
from repro.errors import BackendError


class JaxBackend(ArrayBackend):
    """Execution through ``jax.numpy`` (CPU or accelerator, jaxlib decides)."""

    name = "jax"

    def __init__(self) -> None:
        try:
            import jax
            import jax.numpy as jnp
        except ImportError as exc:
            raise BackendError(f"jax is not importable: {exc}") from exc
        try:
            devices = jax.devices()
        except Exception as exc:  # no usable jaxlib platform
            raise BackendError(f"jax is installed but unusable: {exc}") from exc
        if not devices:
            raise BackendError("jax reports no devices")
        self._jax = jax
        self._jnp = jnp
        self._platform = devices[0].platform

    @property
    def xp(self) -> Any:
        return self._jnp

    @property
    def version(self) -> str:
        return self._jax.__version__

    @property
    def device_kind(self) -> str:
        return "cpu" if self._platform == "cpu" else "gpu"

    def to_numpy(self, values: Any) -> np.ndarray:
        return np.asarray(values)

    def device_of(self, values: Any) -> str:
        devices = getattr(values, "devices", None)
        if callable(devices):
            owners = devices()
            if owners:
                d = next(iter(owners))
                return f"{d.platform}:{d.id}"
        return self.device_kind

    def popcount(self, words: Any) -> Any:
        counts = self._jax.lax.population_count(self._jnp.asarray(words))
        # Accumulating over K must not overflow; int64 silently narrows to
        # int32 without jax_enable_x64, which the validate tolerances absorb.
        return counts.astype(self._jnp.int64)

    def bitcast(self, values: Any, dtype: Any) -> Any:
        return self._jax.lax.bitcast_convert_type(values, dtype)

    def synchronize(self) -> None:
        # block_until_ready exists on arrays, not the namespace; a tiny
        # reduction forces the queue to drain.
        self._jnp.zeros(1).block_until_ready()
