"""Pluggable array-execution backends for the functional data path.

The paper's library runs "as fast as the hardware allows" because the same
API executes on whatever accelerator is present. This package is the
reproduction's equivalent: an :class:`ArrayBackend` protocol (array
namespace + conversion + the handful of primitives the kernels need) with a
NumPy reference backend that is always present, and CuPy / JAX backends
that are *detected lazily* — importing :mod:`repro.backend` never imports
``cupy`` or ``jax``; the probe happens on first :func:`available_backends`
/ :func:`get_backend` call and graceful absence is part of the contract
(the way ``mach`` exposes one beamform API over NumPy/CuPy/JAX arrays).

Every functional kernel in :mod:`repro.ccglib` and :mod:`repro.tcbf`
accepts an optional ``backend`` argument and defaults to the NumPy
reference, so existing NumPy runs are bit-identical to the pre-backend
code and all golden files replay untouched.

Usage::

    from repro.backend import available_backends, get_backend

    available_backends()          # ('numpy',) or ('numpy', 'jax'), ...
    be = get_backend("numpy")     # always present
    be = get_backend("jax")       # BackendError with the available list
                                  # when jax is not importable

Third-party backends register a factory with :func:`register_backend` and
can self-check against the protocol with
:func:`repro.backend.conformance.check_backend`.
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.errors import BackendError

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "available_backends",
    "backend_versions",
    "get_backend",
    "numpy_backend",
    "register_backend",
]


class ArrayBackend(abc.ABC):
    """Protocol one array library must implement to run the data path.

    The surface is deliberately small: the kernels are written against the
    NumPy API (``reshape``/``moveaxis``/``pad``/``stack``/arithmetic), which
    CuPy and ``jax.numpy`` mirror, so most operations route through the
    :attr:`xp` namespace directly. Only the operations that differ across
    libraries — conversion, matmul dispatch, population count, same-width
    bitcasts, host synchronization — are protocol methods.

    Implementations must be stateless (one instance serves every plan) and
    must raise nothing at *construction* time beyond
    :class:`~repro.errors.BackendError` when the underlying library is
    unusable; availability probing relies on that.
    """

    #: registry name; subclasses override.
    name: str = "abstract"

    # -- identity ------------------------------------------------------------

    @property
    @abc.abstractmethod
    def xp(self) -> Any:
        """The array-API namespace (``numpy``, ``cupy``, ``jax.numpy``)."""

    @property
    @abc.abstractmethod
    def version(self) -> str:
        """Version string of the underlying array library."""

    @property
    def device_kind(self) -> str:
        """Coarse device class the backend executes on: ``cpu`` or ``gpu``."""
        return "cpu"

    # -- conversion ----------------------------------------------------------

    def asarray(self, values: Any, dtype: Any = None) -> Any:
        """Convert ``values`` to this backend's array type (no copy if avoidable)."""
        return self.xp.asarray(values, dtype=dtype)

    def to_numpy(self, values: Any) -> np.ndarray:
        """Materialize a backend array on the host as a NumPy array."""
        return np.asarray(values)

    def astype(self, values: Any, dtype: Any) -> Any:
        """Cast to ``dtype``, avoiding the copy when the dtype already matches."""
        return self.xp.asarray(values, dtype=dtype)

    # -- introspection -------------------------------------------------------

    def dtype_of(self, values: Any) -> np.dtype:
        """The element dtype of a backend array, as a NumPy dtype."""
        return np.dtype(values.dtype)

    def device_of(self, values: Any) -> str:
        """Human-readable placement of one array (``cpu`` for host arrays)."""
        return self.device_kind

    # -- compute primitives --------------------------------------------------

    def matmul(self, a: Any, b: Any) -> Any:
        """Matrix product with NumPy ``@`` semantics (batched over leading dims)."""
        return self.xp.matmul(a, b)

    def einsum(self, subscripts: str, *operands: Any) -> Any:
        """Einstein summation over backend arrays."""
        return self.xp.einsum(subscripts, *operands)

    def popcount(self, words: Any) -> Any:
        """Per-element population count of an unsigned-integer array.

        The default is a branch-free SWAR reduction in ordinary integer
        arithmetic, so any NumPy-like namespace supports it; backends with a
        native instruction (NumPy ``bitwise_count``, ``jax.lax
        .population_count``) override it. The result is a signed integer
        array wide enough to accumulate over the K axis of a GEMM.
        """
        return _popcount_swar(words, self.xp)

    def bitcast(self, values: Any, dtype: Any) -> Any:
        """Reinterpret an array's bytes as a same-itemsize dtype.

        The tf32 quantizer rounds float32 mantissas through their uint32
        encoding; NumPy/CuPy implement this as a zero-copy ``view`` while
        JAX needs ``lax.bitcast_convert_type``.
        """
        return values.view(dtype)

    def synchronize(self) -> None:
        """Block until queued device work completes (no-op on host backends).

        Wall-clock benchmarks call this around timed regions so asynchronous
        dispatch (CuPy streams, JAX async execution) cannot leak work out of
        the measurement.
        """


def _popcount_swar(words: Any, xp: Any) -> Any:
    """Branch-free 32-bit SWAR popcount usable from any NumPy-like namespace."""
    v = xp.asarray(words)
    if v.dtype != xp.uint32:
        v = v.astype(xp.uint32)
    v = v - ((v >> 1) & xp.uint32(0x55555555))
    v = (v & xp.uint32(0x33333333)) + ((v >> 2) & xp.uint32(0x33333333))
    v = (v + (v >> 4)) & xp.uint32(0x0F0F0F0F)
    counts = (v * xp.uint32(0x01010101)) >> xp.uint32(24)
    return counts.astype(xp.int64)


class NumpyBackend(ArrayBackend):
    """The reference backend: plain NumPy on the host CPU.

    Always available, and the default of every functional kernel — NumPy
    runs through the backend layer are bit-identical to the pre-backend
    implementation, which is what keeps the golden CSVs/trace/dashboard
    replaying untouched.
    """

    name = "numpy"

    @property
    def xp(self) -> Any:
        return np

    @property
    def version(self) -> str:
        return np.__version__

    def astype(self, values: Any, dtype: Any) -> Any:
        return np.asarray(values).astype(dtype, copy=False)

    def popcount(self, words: Any) -> Any:
        from repro.util.bits import popcount

        return popcount(words)


# -- registry ----------------------------------------------------------------


def _make_cupy() -> ArrayBackend:
    from repro.backend.cupy_backend import CupyBackend

    return CupyBackend()


def _make_jax() -> ArrayBackend:
    from repro.backend.jax_backend import JaxBackend

    return JaxBackend()


#: backend name -> zero-argument factory. Factories import their library on
#: first call (never at repro.backend import time) and raise BackendError
#: when it is absent or unusable; the registry caches successful instances
#: and remembers failures so each probe runs once per process.
_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {
    "numpy": NumpyBackend,
    "cupy": _make_cupy,
    "jax": _make_jax,
}
_PROBE_FAILURES: dict[str, str] = {}

_NUMPY = NumpyBackend()

#: the reference instance is pre-seeded so ``get_backend("numpy")``,
#: ``get_backend(None)`` and :func:`numpy_backend` all return the same
#: process-wide object.
_INSTANCES: dict[str, ArrayBackend] = {"numpy": _NUMPY}


def numpy_backend() -> NumpyBackend:
    """The process-wide NumPy reference backend instance."""
    return _NUMPY


def register_backend(
    name: str, factory: Callable[[], ArrayBackend], *, overwrite: bool = False
) -> None:
    """Register a third-party backend factory under ``name``.

    ``factory`` is called lazily (on first :func:`get_backend` /
    :func:`available_backends`) and must return an :class:`ArrayBackend`
    or raise :class:`~repro.errors.BackendError`. Registering over an
    existing name requires ``overwrite=True``; the ``numpy`` reference can
    never be replaced.
    """
    if name == "numpy" and name in _FACTORIES:
        raise BackendError("the 'numpy' reference backend cannot be replaced")
    if name in _FACTORIES and not overwrite:
        raise BackendError(f"backend {name!r} is already registered (pass overwrite=True)")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)
    _PROBE_FAILURES.pop(name, None)


def _probe(name: str) -> ArrayBackend | None:
    """Instantiate a registered backend once, remembering failures."""
    if name in _INSTANCES:
        return _INSTANCES[name]
    if name in _PROBE_FAILURES:
        return None
    try:
        instance = _FACTORIES[name]()
    except BackendError as exc:
        _PROBE_FAILURES[name] = str(exc)
        return None
    except ImportError as exc:  # factory imported its library directly
        _PROBE_FAILURES[name] = f"import failed: {exc}"
        return None
    _INSTANCES[name] = instance
    return instance


def available_backends() -> tuple[str, ...]:
    """Names of every registered backend that is importable right now.

    ``numpy`` is always first; optional backends appear in registration
    order when their probe succeeds. Probes are cached, so calling this
    repeatedly (the CLI, the validation harness, the bench) is free.
    """
    return tuple(name for name in _FACTORIES if _probe(name) is not None)


def backend_versions() -> dict[str, str]:
    """Mapping of every *available* backend to its library version string.

    This is the ``backends`` block of the bench ``--output`` JSON report —
    a run is only comparable to another run when the same backends at the
    same versions were visible.
    """
    versions: dict[str, str] = {}
    for name in _FACTORIES:
        instance = _probe(name)
        if instance is not None:
            versions[name] = instance.version
    return versions


def get_backend(name: str | ArrayBackend | None = None) -> ArrayBackend:
    """Resolve a backend by name (``None`` -> the NumPy reference).

    Passing an :class:`ArrayBackend` instance returns it unchanged, so
    every functional kernel can accept either form. Unknown names and
    known-but-unavailable backends raise :class:`~repro.errors.BackendError`
    naming the backends that *are* available.
    """
    if name is None:
        return _NUMPY
    if isinstance(name, ArrayBackend):
        return name
    if name not in _FACTORIES:
        raise BackendError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        )
    instance = _probe(name)
    if instance is None:
        reason = _PROBE_FAILURES.get(name, "probe failed")
        raise BackendError(
            f"backend {name!r} is not available ({reason}); "
            f"available: {', '.join(available_backends())}"
        )
    return instance
