"""Protocol-conformance checks for :class:`~repro.backend.ArrayBackend`.

A third-party backend (or a new optional backend added here) can self-check
with :func:`check_backend` before being trusted with the functional data
path. Each check exercises one protocol obligation with a small known-answer
problem and reports a human-readable problem string on violation;
:func:`require_conformant` raises :class:`~repro.errors.BackendError` with
the full list instead. The suite intentionally runs in well under a second
so it can gate backend registration in tests and CI.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend
from repro.errors import BackendError

#: uint32 words with known popcounts (0, 32, 1, 31, 16, 13 bits set).
_POPCOUNT_WORDS = np.array(
    [0x00000000, 0xFFFFFFFF, 0x00000001, 0xFFFFFFFE, 0x0F0F0F0F, 0x12345FFF],
    dtype=np.uint32,
)
_POPCOUNT_EXPECT = np.array([0, 32, 1, 31, 16, 19], dtype=np.int64)


def check_backend(backend: ArrayBackend) -> list[str]:
    """Run every conformance check; returns problem strings (empty = pass)."""
    problems: list[str] = []
    problems += _check_identity(backend)
    problems += _check_conversion(backend)
    problems += _check_matmul(backend)
    problems += _check_popcount(backend)
    problems += _check_bitcast(backend)
    problems += _check_namespace(backend)
    return problems


def require_conformant(backend: ArrayBackend) -> None:
    """Raise :class:`BackendError` listing every conformance violation."""
    problems = check_backend(backend)
    if problems:
        raise BackendError(
            f"backend {backend.name!r} violates the ArrayBackend protocol: "
            + "; ".join(problems)
        )


def _check_identity(backend: ArrayBackend) -> list[str]:
    problems = []
    if not isinstance(backend.name, str) or not backend.name:
        problems.append("name must be a non-empty string")
    if not isinstance(backend.version, str) or not backend.version:
        problems.append("version must be a non-empty string")
    if backend.device_kind not in ("cpu", "gpu"):
        problems.append(f"device_kind must be 'cpu' or 'gpu', got {backend.device_kind!r}")
    return problems


def _check_conversion(backend: ArrayBackend) -> list[str]:
    problems = []
    host = np.arange(6, dtype=np.float32).reshape(2, 3)
    arr = backend.asarray(host)
    back = backend.to_numpy(arr)
    if not isinstance(back, np.ndarray):
        return [f"to_numpy must return a numpy array, got {type(back).__name__}"]
    if back.shape != host.shape or not np.array_equal(back, host):
        problems.append("asarray -> to_numpy must round-trip values and shape")
    typed = backend.to_numpy(backend.asarray(host, dtype=np.float64))
    if typed.dtype != np.float64:
        problems.append(f"asarray(dtype=float64) produced {typed.dtype}")
    cast = backend.to_numpy(backend.astype(arr, np.float16))
    if cast.dtype != np.float16:
        problems.append(f"astype(float16) produced {cast.dtype}")
    if backend.dtype_of(arr) != np.float32:
        problems.append(f"dtype_of reported {backend.dtype_of(arr)} for a float32 array")
    if not isinstance(backend.device_of(arr), str):
        problems.append("device_of must return a string")
    return problems


def _check_matmul(backend: ArrayBackend) -> list[str]:
    problems = []
    rng = np.random.default_rng(7)
    a = rng.normal(size=(2, 3, 4)).astype(np.float32)
    b = rng.normal(size=(2, 4, 5)).astype(np.float32)
    got = backend.to_numpy(backend.matmul(backend.asarray(a), backend.asarray(b)))
    want = a @ b
    if got.shape != want.shape:
        problems.append(f"matmul shape {got.shape} != {want.shape} (batched @ semantics)")
    elif not np.allclose(got, want, rtol=1e-5, atol=1e-6):
        problems.append("matmul result deviates from the NumPy product")
    e = backend.to_numpy(
        backend.einsum("bmk,bkn->bmn", backend.asarray(a), backend.asarray(b))
    )
    if e.shape != want.shape or not np.allclose(e, want, rtol=1e-5, atol=1e-5):
        problems.append("einsum('bmk,bkn->bmn') deviates from the NumPy product")
    return problems


def _check_popcount(backend: ArrayBackend) -> list[str]:
    got = backend.to_numpy(backend.popcount(backend.asarray(_POPCOUNT_WORDS)))
    if got.shape != _POPCOUNT_WORDS.shape:
        return [f"popcount changed the shape: {got.shape}"]
    if not np.issubdtype(got.dtype, np.signedinteger):
        return [f"popcount must return a signed integer array, got {got.dtype}"]
    if not np.array_equal(got.astype(np.int64), _POPCOUNT_EXPECT):
        return [f"popcount({_POPCOUNT_WORDS.tolist()}) = {got.tolist()}, want {_POPCOUNT_EXPECT.tolist()}"]
    return []


def _check_bitcast(backend: ArrayBackend) -> list[str]:
    f = backend.asarray(np.array([1.0, -2.5, 0.0], dtype=np.float32))
    bits = backend.bitcast(f, np.uint32)
    if backend.dtype_of(bits) != np.uint32:
        return [f"bitcast(float32 -> uint32) produced {backend.dtype_of(bits)}"]
    want = np.array([1.0, -2.5, 0.0], dtype=np.float32).view(np.uint32)
    got = backend.to_numpy(bits).reshape(-1)
    if not np.array_equal(got, want):
        return ["bitcast must reinterpret bytes exactly (IEEE-754 encodings differ)"]
    back = backend.to_numpy(backend.bitcast(bits, np.float32)).reshape(-1)
    if not np.array_equal(back, want.view(np.float32)):
        return ["bitcast(uint32 -> float32) must invert bitcast(float32 -> uint32)"]
    return []


def _check_namespace(backend: ArrayBackend) -> list[str]:
    """The kernels lean on these namespace functions; probe each one."""
    xp = backend.xp
    missing = [
        fn
        for fn in (
            "asarray", "stack", "concatenate", "moveaxis", "swapaxes",
            "pad", "reshape", "zeros", "arange", "sqrt", "mean", "abs",
        )
        if not hasattr(xp, fn)
    ]
    if missing:
        return [f"xp namespace lacks required functions: {', '.join(missing)}"]
    a = backend.asarray(np.ones((2, 3), dtype=np.float32))
    stacked = backend.to_numpy(xp.stack([a, a], axis=0))
    if stacked.shape != (2, 2, 3):
        return [f"xp.stack produced shape {stacked.shape}, want (2, 2, 3)"]
    padded = backend.to_numpy(xp.pad(a, ((0, 1), (0, 0)), constant_values=0))
    if padded.shape != (3, 3) or padded[2].any():
        return ["xp.pad must zero-pad with constant_values=0"]
    return []
