"""Roofline analysis of the GEMM kernels (paper §IV-B, Fig 3).

"To construct the ceiling of the roofline, we use the theoretical memory
bandwidth of the GPU and the measured peak tensor core throughput (see
Table I). ... We then use the theoretical amount of bytes transferred to
and from device memory to calculate the arithmetic intensity."

The ceilings per device are therefore:

* the DRAM bandwidth slope (theoretical bandwidth);
* the *measured* tensor-core peak for float16 and (NVIDIA) int1, i.e. the
  cudapeak micro-benchmark values, which already fold in sustained clocks
  and the Hopper WMMA factor;
* the float32 peak of the normal cores, drawn for comparison ("in all cases
  except the small matrix size on the workstation-grade GPUs, ccglib is
  faster than the theoretical maximum of the normal single-precision
  cores").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ccglib.perfmodel import GemmProblem, theoretical_min_bytes
from repro.ccglib.precision import Precision
from repro.cudapeak.microbench import run_microbenchmark
from repro.gpusim.arch import FRAG_FLOAT16_16x16x16, FRAG_INT1_16x8x256, BitOp
from repro.gpusim.specs import GPUSpec
from repro.gpusim.timing import KernelCost
from repro.util.units import tera


@dataclass(frozen=True)
class Roofline:
    """The ceilings of one device."""

    gpu: str
    mem_bandwidth_bytes: float
    peaks_ops: dict[str, float]  # ceiling name -> ops/s

    def attainable(self, ceiling: str, arithmetic_intensity: float) -> float:
        """min(peak, AI * bandwidth): the classic roofline bound."""
        return min(self.peaks_ops[ceiling], arithmetic_intensity * self.mem_bandwidth_bytes)

    def ridge_point(self, ceiling: str) -> float:
        """AI at which the kernel turns compute-bound under this ceiling."""
        return self.peaks_ops[ceiling] / self.mem_bandwidth_bytes


@dataclass(frozen=True)
class RooflinePoint:
    """One measured kernel placed on the roofline."""

    gpu: str
    precision: Precision
    label: str
    arithmetic_intensity: float
    achieved_ops: float
    attainable_ops: float
    ceiling: str
    #: True when the roofline bound at this AI is the bandwidth slope
    #: (AI below the ridge point), i.e. the kernel is memory-bound.
    memory_bound: bool

    @property
    def fraction_of_roofline(self) -> float:
        return self.achieved_ops / self.attainable_ops


def build_roofline(spec: GPUSpec) -> Roofline:
    """Construct the Fig 3 ceilings for one device."""
    peaks: dict[str, float] = {}
    fp16 = run_microbenchmark(spec, "float16", FRAG_FLOAT16_16x16x16)
    peaks["float16 tensor"] = fp16.measured_tops * tera
    if spec.caps.supports_precision("int1"):
        op = spec.caps.preferred_bit_op
        int1 = run_microbenchmark(spec, "int1", FRAG_INT1_16x8x256, op)
        measured = int1.measured_tops * tera
        if op is BitOp.AND:
            # AND needs two instructions per useful op (§III-E); the useful-
            # ops ceiling is half the instruction throughput.
            measured /= 2.0
        peaks["int1 tensor"] = measured
    peaks["float32"] = spec.fp32_peak_ops()
    return Roofline(
        gpu=spec.name,
        mem_bandwidth_bytes=spec.mem_bandwidth_bytes(),
        peaks_ops=peaks,
    )


def place_point(
    spec: GPUSpec,
    precision: Precision,
    problem: GemmProblem,
    cost: KernelCost,
    label: str,
) -> RooflinePoint:
    """Place a measured kernel cost on the device roofline.

    Arithmetic intensity uses the theoretical minimum traffic (read A and B
    once, write C once), exactly as the paper computes the Fig 3 x-axis.
    """
    roofline = build_roofline(spec)
    ceiling = "int1 tensor" if precision is Precision.INT1 else "float16 tensor"
    ai = problem.useful_ops() / theoretical_min_bytes(precision, problem)
    attainable = roofline.attainable(ceiling, ai)
    return RooflinePoint(
        gpu=spec.name,
        precision=precision,
        label=label,
        arithmetic_intensity=ai,
        achieved_ops=cost.ops_per_second,
        attainable_ops=attainable,
        ceiling=ceiling,
        memory_bound=is_memory_bound(roofline, ceiling, ai),
    )


def is_memory_bound(roofline: Roofline, ceiling: str, ai: float) -> bool:
    """Whether a kernel at arithmetic intensity ``ai`` sits on the slope."""
    return ai < roofline.ridge_point(ceiling)


#: The four Fig 3 benchmark shapes: "for both the 16-bit and 1-bit kernels,
#: we then select a small and large matrix size" (§IV-B).
FIG3_PROBLEMS: dict[tuple[Precision, str], GemmProblem] = {
    (Precision.FLOAT16, "small"): GemmProblem(batch=256, m=1024, n=1024, k=64),
    (Precision.FLOAT16, "big"): GemmProblem(batch=1, m=8192, n=8192, k=8192),
    (Precision.INT1, "small"): GemmProblem(batch=256, m=1024, n=1024, k=256),
    (Precision.INT1, "big"): GemmProblem(batch=1, m=32768, n=8192, k=524288),
}
