"""Roofline analysis (paper §IV-B, Fig 3)."""

from repro.roofline.model import (
    Roofline,
    RooflinePoint,
    build_roofline,
    place_point,
    is_memory_bound,
    FIG3_PROBLEMS,
)

__all__ = [
    "Roofline",
    "RooflinePoint",
    "build_roofline",
    "place_point",
    "is_memory_bound",
    "FIG3_PROBLEMS",
]
