"""Power Measurement Toolkit (PMT) reproduction.

Sensors model the NVML (NVIDIA) and rocm-smi (AMD) power counters over the
simulated devices; :class:`~repro.pmt.meter.PowerMeter` integrates energy
between readings, feeding the TOPs/J metrics of Figs 2, 4, 7 and Table III.
"""

from repro.pmt.sensor import PowerSensor, NVMLSensor, ROCmSMISensor, PowerReading, create_sensor
from repro.pmt.meter import PowerMeter, PMTState

__all__ = [
    "PowerSensor",
    "NVMLSensor",
    "ROCmSMISensor",
    "PowerReading",
    "create_sensor",
    "PowerMeter",
    "PMTState",
]
