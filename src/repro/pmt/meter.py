"""PMT meter API: start/stop measurement around kernel executions.

Mirrors the Power Measurement Toolkit usage pattern::

    meter = PowerMeter(device)
    begin = meter.read()
    ...   # launch kernels
    end = meter.read()
    joules = meter.joules(begin, end)
    watts = meter.watts(begin, end)

The paper divides measured throughput "by the average power consumption of
the GPU during the kernel execution to obtain the number of operations per
second per Watt, or equivalently the number of operations per Joule"
(§IV-A); :meth:`PowerMeter.ops_per_joule` implements exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerError
from repro.gpusim.device import Device
from repro.pmt.sensor import PowerSensor, create_sensor


@dataclass(frozen=True)
class PMTState:
    """A PMT reading: monotonic timestamp plus cumulative energy."""

    time_s: float
    energy_j: float


class PowerMeter:
    """Integrating power meter over one simulated device."""

    def __init__(self, device: Device, sensor: PowerSensor | None = None):
        self.device = device
        self.sensor = sensor or create_sensor(device)
        self._origin_s = device.now_s

    def read(self) -> PMTState:
        """Cumulative energy since meter construction, at device 'now'."""
        now = self.device.now_s
        return PMTState(
            time_s=now,
            energy_j=self.sensor.integrate_energy(self._origin_s, now),
        )

    @staticmethod
    def seconds(begin: PMTState, end: PMTState) -> float:
        if end.time_s < begin.time_s:
            raise PowerError("PMT states passed in reverse order")
        return end.time_s - begin.time_s

    @staticmethod
    def joules(begin: PMTState, end: PMTState) -> float:
        return end.energy_j - begin.energy_j

    @classmethod
    def watts(cls, begin: PMTState, end: PMTState) -> float:
        dt = cls.seconds(begin, end)
        if dt <= 0:
            raise PowerError("zero-length PMT interval")
        return cls.joules(begin, end) / dt

    @classmethod
    def ops_per_joule(cls, useful_ops: float, begin: PMTState, end: PMTState) -> float:
        """The paper's energy-efficiency metric for a measured section."""
        joules = cls.joules(begin, end)
        if joules <= 0:
            raise PowerError("non-positive energy over the measured interval")
        return useful_ops / joules
