"""Power sensors: the NVML / rocm-smi backends of the PMT reproduction.

"PMT supports power measurements of both NVIDIA GPUs through NVML, as well
as AMD GPUs through rocm-smi" (paper §IV-A, ref [8]). A sensor samples the
instantaneous power of a simulated device; the polling interval matches the
real counters (NVML updates at ~10-20 ms granularity, rocm-smi similar —
here both default to 10 ms but integrate the model's exact timeline, so
short kernels are not under-sampled the way real counters can be).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import PowerError
from repro.gpusim.arch import Vendor
from repro.gpusim.device import Device


@dataclass(frozen=True)
class PowerReading:
    """One (timestamp, instantaneous watts) sample."""

    time_s: float
    watts: float


class PowerSensor(abc.ABC):
    """Samples instantaneous device power at a simulated timestamp."""

    #: sensor poll interval in seconds.
    interval_s: float = 0.010

    def __init__(self, device: Device):
        self.device = device

    @property
    @abc.abstractmethod
    def backend_name(self) -> str:
        """Name of the native counter backend this sensor models."""

    def sample(self, time_s: float | None = None) -> PowerReading:
        """Read instantaneous power at ``time_s`` (default: device 'now')."""
        t = self.device.now_s if time_s is None else time_s
        return PowerReading(time_s=t, watts=self.device.power_at(t))

    def integrate_energy(self, t0: float, t1: float) -> float:
        """Exact energy (J) consumed by the device between two timestamps.

        Integrates the device timeline piecewise instead of summing poll
        samples, which is the idealization of an infinitely fast counter.
        """
        if t1 < t0:
            raise PowerError(f"integration interval reversed: [{t0}, {t1}]")
        energy = 0.0
        covered = 0.0
        for entry in self.device.timeline:
            lo = max(t0, entry.start_s)
            hi = min(t1, entry.end_s)
            if hi > lo:
                energy += entry.cost.power_w * (hi - lo)
                covered += hi - lo
        # Idle draw for the uncovered remainder of the interval.
        energy += self.device.power.idle_w * max(0.0, (t1 - t0) - covered)
        return energy


class NVMLSensor(PowerSensor):
    """NVIDIA Management Library power counter model."""

    @property
    def backend_name(self) -> str:
        return "nvml"


class ROCmSMISensor(PowerSensor):
    """rocm-smi power counter model."""

    @property
    def backend_name(self) -> str:
        return "rocm-smi"


def create_sensor(device: Device) -> PowerSensor:
    """PMT's factory: pick the backend matching the device vendor."""
    if device.spec.arch.vendor is Vendor.NVIDIA:
        return NVMLSensor(device)
    if device.spec.arch.vendor is Vendor.AMD:
        return ROCmSMISensor(device)
    raise PowerError(f"no power backend for {device.spec.arch}")  # pragma: no cover
