"""Deterministic random number generation.

Every stochastic component (phantoms, sky models, noise, tuner sampling)
takes an explicit seed and derives child generators through
:func:`derive_seed`, so experiments are bit-reproducible run to run.
"""

from __future__ import annotations

import hashlib

import numpy as np


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator; pass through if one is given, default-seed if None."""
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0xC0FFEE
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable child seed from a base seed and a label path.

    Uses SHA-256 over the textual labels so adding a new consumer never
    perturbs the streams of existing consumers (unlike sequential spawning).
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest()[:8], "little")
