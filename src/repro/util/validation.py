"""Small argument-validation helpers used across the library."""

from __future__ import annotations

from repro.errors import ReproError, ShapeError


def require(condition: bool, message: str, exc: type[ReproError] = ShapeError) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def require_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool) or value <= 0:
        raise ShapeError(f"{name} must be a positive integer, got {value!r}")
    return value


def require_multiple(value: int, factor: int, name: str) -> int:
    """Validate that ``value`` is a positive multiple of ``factor``."""
    require_positive_int(value, name)
    if value % factor != 0:
        raise ShapeError(f"{name} must be a multiple of {factor}, got {value}")
    return value


def require_power_of_two(value: int, name: str) -> int:
    """Validate that ``value`` is a positive power of two."""
    require_positive_int(value, name)
    if value & (value - 1) != 0:
        raise ShapeError(f"{name} must be a power of two, got {value}")
    return value


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division; used for tile counts everywhere."""
    return -(-a // b)


def round_up(a: int, b: int) -> int:
    """Round ``a`` up to the next multiple of ``b``."""
    return ceil_div(a, b) * b
