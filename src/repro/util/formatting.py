"""ASCII table and plot rendering for benchmark reports.

The benchmark harness regenerates the paper's tables and figures as text:
tables are rendered with aligned columns, figures as ASCII scatter/line plots
plus the underlying series dumped as CSV so they can be re-plotted elsewhere.
No plotting library is required (the environment is offline).
"""

from __future__ import annotations

import io
import math
from collections.abc import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.3g}",
) -> str:
    """Render a monospace table with a header rule, similar to the paper's tables."""
    str_rows: list[list[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_fmt.format(cell))
            else:
                rendered.append(str(cell))
        str_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header_line = fmt_row(list(headers))
    out.write(header_line + "\n")
    out.write("-+-".join("-" * w for w in widths) + "\n")
    for row in str_rows:
        out.write(fmt_row(row) + "\n")
    return out.getvalue()


def render_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Minimal CSV writer (no quoting needs arise for our numeric tables)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(repr(c) if isinstance(c, float) else str(c) for c in row))
    return "\n".join(lines) + "\n"


def ascii_scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 64,
    height: int = 18,
    xlabel: str = "x",
    ylabel: str = "y",
    title: str | None = None,
    logx: bool = False,
    logy: bool = False,
    marker: str = "o",
) -> str:
    """Render points as an ASCII scatter plot.

    Used to give an at-a-glance view of figure reproductions (Fig 2 tuning
    clouds, Fig 4 sawtooth curves, Fig 5 fps curves) directly in terminal
    output; the exact series are emitted separately as CSV.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    pts = [(x, y) for x, y in zip(xs, ys) if _finite(x, logx) and _finite(y, logy)]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    if not pts:
        out.write("(no data)\n")
        return out.getvalue()

    def tx(v: float) -> float:
        return math.log10(v) if logx else v

    def ty(v: float) -> float:
        return math.log10(v) if logy else v

    xs_t = [tx(x) for x, _ in pts]
    ys_t = [ty(y) for _, y in pts]
    x_lo, x_hi = min(xs_t), max(xs_t)
    y_lo, y_hi = min(ys_t), max(ys_t)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs_t, ys_t):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = marker
    y_hi_label = f"{_inv(y_hi, logy):.3g}"
    y_lo_label = f"{_inv(y_lo, logy):.3g}"
    margin = max(len(y_hi_label), len(y_lo_label))
    for i, line in enumerate(grid):
        if i == 0:
            label = y_hi_label.rjust(margin)
        elif i == height - 1:
            label = y_lo_label.rjust(margin)
        else:
            label = " " * margin
        out.write(f"{label} |{''.join(line)}|\n")
    out.write(" " * margin + " +" + "-" * width + "+\n")
    x_lo_label = f"{_inv(x_lo, logx):.3g}"
    x_hi_label = f"{_inv(x_hi, logx):.3g}"
    pad = width - len(x_lo_label) - len(x_hi_label)
    out.write(" " * (margin + 2) + x_lo_label + " " * max(pad, 1) + x_hi_label + "\n")
    out.write(" " * (margin + 2) + f"{xlabel}  (y: {ylabel})\n")
    return out.getvalue()


def ascii_series(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 18,
    xlabel: str = "x",
    ylabel: str = "y",
    title: str | None = None,
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Overlay several named series on one ASCII plot, one marker per series."""
    markers = "ox+*#@%&$~"
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    all_pts: list[tuple[float, float, str]] = []
    legend: list[str] = []
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        legend.append(f"{marker}={name}")
        for x, y in zip(xs, ys):
            if _finite(x, logx) and _finite(y, logy):
                all_pts.append((x, y, marker))
    if not all_pts:
        out.write("(no data)\n")
        return out.getvalue()

    def tx(v: float) -> float:
        return math.log10(v) if logx else v

    def ty(v: float) -> float:
        return math.log10(v) if logy else v

    xs_t = [tx(p[0]) for p in all_pts]
    ys_t = [ty(p[1]) for p in all_pts]
    x_lo, x_hi = min(xs_t), max(xs_t)
    y_lo, y_hi = min(ys_t), max(ys_t)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (x, y, marker), xt, yt in zip(all_pts, xs_t, ys_t):
        col = int((xt - x_lo) / x_span * (width - 1))
        row = height - 1 - int((yt - y_lo) / y_span * (height - 1))
        grid[row][col] = marker
    y_hi_label = f"{_inv(y_hi, logy):.3g}"
    y_lo_label = f"{_inv(y_lo, logy):.3g}"
    margin = max(len(y_hi_label), len(y_lo_label))
    for i, line in enumerate(grid):
        if i == 0:
            label = y_hi_label.rjust(margin)
        elif i == height - 1:
            label = y_lo_label.rjust(margin)
        else:
            label = " " * margin
        out.write(f"{label} |{''.join(line)}|\n")
    out.write(" " * margin + " +" + "-" * width + "+\n")
    x_lo_label = f"{_inv(x_lo, logx):.3g}"
    x_hi_label = f"{_inv(x_hi, logx):.3g}"
    pad = width - len(x_lo_label) - len(x_hi_label)
    out.write(" " * (margin + 2) + x_lo_label + " " * max(pad, 1) + x_hi_label + "\n")
    out.write(" " * (margin + 2) + f"{xlabel}  (y: {ylabel})   " + "  ".join(legend) + "\n")
    return out.getvalue()


def _finite(v: float, log: bool) -> bool:
    if not math.isfinite(v):
        return False
    return v > 0 if log else True


def _inv(v: float, log: bool) -> float:
    return 10**v if log else v
