"""Shared utilities: bit manipulation, units, formatting, RNG, validation."""

from repro.util.bits import (
    pack_bits,
    unpack_bits,
    popcount,
    sign_to_bits,
    bits_to_sign,
    PACK_WORD_BITS,
)
from repro.util.units import (
    tera,
    giga,
    mega,
    kilo,
    format_ops_rate,
    format_bytes,
    format_seconds,
    format_si,
)
from repro.util.rng import make_rng, derive_seed
from repro.util.validation import (
    require,
    require_positive_int,
    require_multiple,
    require_power_of_two,
)

__all__ = [
    "pack_bits",
    "unpack_bits",
    "popcount",
    "sign_to_bits",
    "bits_to_sign",
    "PACK_WORD_BITS",
    "tera",
    "giga",
    "mega",
    "kilo",
    "format_ops_rate",
    "format_bytes",
    "format_seconds",
    "format_si",
    "make_rng",
    "derive_seed",
    "require",
    "require_positive_int",
    "require_multiple",
    "require_power_of_two",
]
