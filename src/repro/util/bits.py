"""Bit-level helpers for the 1-bit tensor-core data path.

The paper stores 1-bit samples packed 32-per-word ("32 consecutive 1-bit
samples must be stored in a single 32-bit integer", §III). The encoding maps
the sign of a real number to one bit: binary 1 represents +1 and binary 0
represents -1 (Fig. 1 of the paper). Zero is not representable.

Packing order
-------------
Within one 32-bit word, sample ``i`` (0-based, counted along the packed axis)
occupies bit position ``31 - (i % 32)``: the first sample lands in the most
significant bit. This matches the big-endian bit order used by the CUDA
``b1`` fragments and keeps lexicographic sample order equal to numeric word
order, which the transpose kernel relies on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

#: Number of 1-bit samples stored per packed 32-bit word.
PACK_WORD_BITS = 32

# Lookup table fallback for popcount on platforms without np.bitwise_count.
_POPCNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def popcount(words: np.ndarray) -> np.ndarray:
    """Population count of each element of an unsigned integer array.

    Uses :func:`numpy.bitwise_count` when available (NumPy >= 2.0) and an
    8-bit lookup table otherwise. The return dtype is ``int64`` so that
    accumulating popcounts over the K axis of a large GEMM cannot overflow.
    """
    words = np.asarray(words)
    if not np.issubdtype(words.dtype, np.unsignedinteger):
        raise ShapeError(f"popcount requires an unsigned integer array, got {words.dtype}")
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).astype(np.int64)
    as_bytes = words.reshape(-1).view(np.uint8)
    counts = _POPCNT8[as_bytes].reshape(words.shape + (words.dtype.itemsize,))
    return counts.sum(axis=-1, dtype=np.int64)


def sign_to_bits(values: np.ndarray) -> np.ndarray:
    """Map real values to the 1-bit encoding: >= 0 -> 1 (i.e. +1), < 0 -> 0 (-1).

    The paper quantizes by "only keeping the sign of the signal" (§V-A). The
    convention for exact zero follows the hardware comparison used in the
    CUDA packing kernel: ``x >= 0`` maps to binary one.
    """
    return (np.asarray(values) >= 0).astype(np.uint8)


def bits_to_sign(bits: np.ndarray, dtype=np.int8) -> np.ndarray:
    """Map the 1-bit encoding back to ±1 values (1 -> +1, 0 -> -1)."""
    bits = np.asarray(bits)
    return (bits.astype(np.int8) * 2 - 1).astype(dtype)


def pack_bits(bits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Pack an array of {0,1} samples along ``axis`` into uint32 words.

    ``axis`` must have a length that is a multiple of 32; callers pad first
    (the GEMM layer pads with binary 0, i.e. decimal -1, per paper §III-D).
    The first sample of each 32-group becomes the most significant bit.
    """
    bits = np.asarray(bits)
    axis = axis % bits.ndim
    n = bits.shape[axis]
    if n % PACK_WORD_BITS != 0:
        raise ShapeError(f"packed axis length {n} is not a multiple of {PACK_WORD_BITS}; pad first")
    moved = np.moveaxis(bits, axis, -1)
    grouped = moved.reshape(moved.shape[:-1] + (n // PACK_WORD_BITS, PACK_WORD_BITS))
    # np.packbits packs 8 bits per byte MSB-first; view 4 consecutive bytes as
    # one big-endian uint32 so sample order matches bit significance.
    packed_bytes = np.packbits(grouped.astype(np.uint8), axis=-1, bitorder="big")
    words = packed_bytes.view(">u4")[..., 0].astype(np.uint32)
    return np.moveaxis(words, -1, axis)


def unpack_bits(words: np.ndarray, axis: int = -1, count: int | None = None) -> np.ndarray:
    """Inverse of :func:`pack_bits`: expand uint32 words into {0,1} samples.

    ``count`` optionally trims the unpacked axis to the original (pre-padding)
    number of samples.
    """
    words = np.asarray(words)
    if words.dtype != np.uint32:
        raise ShapeError(f"unpack_bits expects uint32 words, got {words.dtype}")
    axis = axis % words.ndim
    moved = np.moveaxis(words, axis, -1)
    as_bytes = moved[..., None].astype(">u4").view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="big")
    flat = bits.reshape(moved.shape[:-1] + (moved.shape[-1] * PACK_WORD_BITS,))
    if count is not None:
        if count > flat.shape[-1]:
            raise ShapeError(f"count {count} exceeds unpacked length {flat.shape[-1]}")
        flat = flat[..., :count]
    return np.moveaxis(flat, -1, axis)


def packed_length(n: int) -> int:
    """Number of uint32 words needed to store ``n`` 1-bit samples."""
    return -(-n // PACK_WORD_BITS)


def pad_to_words(bits: np.ndarray, axis: int = -1, pad_bit: int = 0) -> np.ndarray:
    """Pad a {0,1} array along ``axis`` up to a multiple of 32 samples.

    The default ``pad_bit=0`` encodes decimal -1, matching the padding
    convention of the 1-bit GEMM (paper §III-D: "we set the padded region to
    binary 0, which corresponds to decimal -1").
    """
    bits = np.asarray(bits)
    axis = axis % bits.ndim
    n = bits.shape[axis]
    target = packed_length(n) * PACK_WORD_BITS
    if target == n:
        return bits
    pad_width = [(0, 0)] * bits.ndim
    pad_width[axis] = (0, target - n)
    return np.pad(bits, pad_width, constant_values=pad_bit)
