"""Bit-level helpers for the 1-bit tensor-core data path.

The paper stores 1-bit samples packed 32-per-word ("32 consecutive 1-bit
samples must be stored in a single 32-bit integer", §III). The encoding maps
the sign of a real number to one bit: binary 1 represents +1 and binary 0
represents -1 (Fig. 1 of the paper). Zero is not representable.

Packing order
-------------
Within one 32-bit word, sample ``i`` (0-based, counted along the packed axis)
occupies bit position ``31 - (i % 32)``: the first sample lands in the most
significant bit. This matches the big-endian bit order used by the CUDA
``b1`` fragments and keeps lexicographic sample order equal to numeric word
order, which the transpose kernel relies on.

Backends
--------
Every helper accepts an optional :class:`~repro.backend.ArrayBackend`
(default: the NumPy reference). The NumPy path keeps its historical
``np.packbits`` / big-endian-view implementation — bit-identical to the
pre-backend code — while other backends use a vectorized shift-and-or
formulation built only from universal ufuncs, so CuPy and JAX need neither
``packbits`` nor byte-order views.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, get_backend, numpy_backend
from repro.errors import ShapeError

#: Number of 1-bit samples stored per packed 32-bit word.
PACK_WORD_BITS = 32

# Lookup table fallback for popcount on platforms without np.bitwise_count.
_POPCNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def popcount(words: np.ndarray) -> np.ndarray:
    """Population count of each element of an unsigned integer array.

    Uses :func:`numpy.bitwise_count` when available (NumPy >= 2.0) and an
    8-bit lookup table otherwise. The return dtype is ``int64`` so that
    accumulating popcounts over the K axis of a large GEMM cannot overflow.
    (This is the NumPy reference; other backends provide
    :meth:`~repro.backend.ArrayBackend.popcount`.)
    """
    words = np.asarray(words)
    if not np.issubdtype(words.dtype, np.unsignedinteger):
        raise ShapeError(f"popcount requires an unsigned integer array, got {words.dtype}")
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).astype(np.int64)
    as_bytes = words.reshape(-1).view(np.uint8)
    counts = _POPCNT8[as_bytes].reshape(words.shape + (words.dtype.itemsize,))
    return counts.sum(axis=-1, dtype=np.int64)


def sign_to_bits(values, backend: ArrayBackend | None = None):
    """Map real values to the 1-bit encoding: >= 0 -> 1 (i.e. +1), < 0 -> 0 (-1).

    The paper quantizes by "only keeping the sign of the signal" (§V-A). The
    convention for exact zero follows the hardware comparison used in the
    CUDA packing kernel: ``x >= 0`` maps to binary one.
    """
    be = get_backend(backend)
    return (be.asarray(values) >= 0).astype(be.xp.uint8)


def bits_to_sign(bits, dtype=np.int8, backend: ArrayBackend | None = None):
    """Map the 1-bit encoding back to ±1 values (1 -> +1, 0 -> -1)."""
    be = get_backend(backend)
    bits = be.asarray(bits)
    return (bits.astype(be.xp.int8) * 2 - 1).astype(dtype)


def _pack_words_shift_or(grouped, xp):
    """Combine a (..., W, 32) {0,1} array into (..., W) uint32 words.

    Pure shift-and-or: sample ``i`` of each 32-group contributes
    ``bit << (31 - i)``; the contributions occupy disjoint bit positions,
    so an integer sum equals the bitwise OR. Only universal ufuncs are
    used, which makes this path work on every backend — and on NumPy it
    produces words bit-identical to the historical packbits/view path.
    """
    shifts = xp.arange(PACK_WORD_BITS - 1, -1, -1, dtype=xp.uint32)
    contributions = grouped.astype(xp.uint32) << shifts
    return contributions.sum(axis=-1, dtype=xp.uint32)


def pack_bits(bits, axis: int = -1, backend: ArrayBackend | None = None):
    """Pack an array of {0,1} samples along ``axis`` into uint32 words.

    ``axis`` must have a length that is a multiple of 32; callers pad first
    (the GEMM layer pads with binary 0, i.e. decimal -1, per paper §III-D).
    The first sample of each 32-group becomes the most significant bit.
    """
    be = get_backend(backend)
    xp = be.xp
    bits = be.asarray(bits)
    axis = axis % bits.ndim
    n = bits.shape[axis]
    if n % PACK_WORD_BITS != 0:
        raise ShapeError(f"packed axis length {n} is not a multiple of {PACK_WORD_BITS}; pad first")
    moved = xp.moveaxis(bits, axis, -1)
    grouped = moved.reshape(moved.shape[:-1] + (n // PACK_WORD_BITS, PACK_WORD_BITS))
    if xp is np:
        # np.packbits packs 8 bits per byte MSB-first; view 4 consecutive
        # bytes as one big-endian uint32 so sample order matches bit
        # significance. Kept as the NumPy fast path (C loop, no 32x
        # temporary); numerically identical to the shift-and-or fallback.
        packed_bytes = np.packbits(grouped.astype(np.uint8), axis=-1, bitorder="big")
        words = packed_bytes.view(">u4")[..., 0].astype(np.uint32)
    else:
        words = _pack_words_shift_or(grouped, xp)
    return xp.moveaxis(words, -1, axis)


def unpack_bits(
    words, axis: int = -1, count: int | None = None, backend: ArrayBackend | None = None
):
    """Inverse of :func:`pack_bits`: expand uint32 words into {0,1} samples.

    ``count`` optionally trims the unpacked axis to the original (pre-padding)
    number of samples.
    """
    be = get_backend(backend)
    xp = be.xp
    words = be.asarray(words)
    if words.dtype != xp.uint32:
        raise ShapeError(f"unpack_bits expects uint32 words, got {words.dtype}")
    axis = axis % words.ndim
    moved = xp.moveaxis(words, axis, -1)
    if xp is np:
        as_bytes = moved[..., None].astype(">u4").view(np.uint8)
        bits = np.unpackbits(as_bytes, axis=-1, bitorder="big")
    else:
        shifts = xp.arange(PACK_WORD_BITS - 1, -1, -1, dtype=xp.uint32)
        bits = ((moved[..., None] >> shifts) & xp.uint32(1)).astype(xp.uint8)
    flat = bits.reshape(moved.shape[:-1] + (moved.shape[-1] * PACK_WORD_BITS,))
    if count is not None:
        if count > flat.shape[-1]:
            raise ShapeError(f"count {count} exceeds unpacked length {flat.shape[-1]}")
        flat = flat[..., :count]
    return xp.moveaxis(flat, -1, axis)


def packed_length(n: int) -> int:
    """Number of uint32 words needed to store ``n`` 1-bit samples."""
    return -(-n // PACK_WORD_BITS)


def pad_to_words(bits, axis: int = -1, pad_bit: int = 0, backend: ArrayBackend | None = None):
    """Pad a {0,1} array along ``axis`` up to a multiple of 32 samples.

    The default ``pad_bit=0`` encodes decimal -1, matching the padding
    convention of the 1-bit GEMM (paper §III-D: "we set the padded region to
    binary 0, which corresponds to decimal -1").
    """
    be = get_backend(backend)
    xp = be.xp
    bits = be.asarray(bits)
    axis = axis % bits.ndim
    n = bits.shape[axis]
    target = packed_length(n) * PACK_WORD_BITS
    if target == n:
        return bits
    pad_width = [(0, 0)] * bits.ndim
    pad_width[axis] = (0, target - n)
    return xp.pad(bits, pad_width, constant_values=pad_bit)


# re-export for callers that resolve backends through this module
__all__ = [
    "PACK_WORD_BITS",
    "bits_to_sign",
    "numpy_backend",
    "pack_bits",
    "packed_length",
    "pad_to_words",
    "popcount",
    "sign_to_bits",
    "unpack_bits",
]
