"""Unit constants and human-readable formatting for rates, bytes and times.

The paper reports performance in TeraOps/s (TOPs/s) and energy efficiency in
TeraOps/J (equivalently Ops/s/W); these helpers keep that vocabulary in one
place so benchmark output matches the paper's tables.
"""

from __future__ import annotations

kilo = 1e3
mega = 1e6
giga = 1e9
tera = 1e12
peta = 1e15


def format_si(value: float, unit: str, precision: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(3.08e15, 'Ops/s')``
    -> ``'3.08 POps/s'``."""
    prefixes = [
        (1e15, "P"),
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
    ]
    if value == 0:
        return f"0 {unit}"
    magnitude = abs(value)
    for factor, prefix in prefixes:
        if magnitude >= factor:
            return f"{value / factor:.{precision}g} {prefix}{unit}"
    return f"{value:.{precision}g} {unit}"


def format_ops_rate(ops_per_second: float) -> str:
    """Render an operation rate the way the paper does (TOPs/s)."""
    return f"{ops_per_second / tera:.1f} TOPs/s"


def format_ops_per_joule(ops_per_joule: float) -> str:
    """Render energy efficiency the way the paper does (TOPs/J)."""
    return f"{ops_per_joule / tera:.2f} TOPs/J"


def format_bytes(n: float) -> str:
    """Binary-prefix byte formatting (KiB/MiB/GiB)."""
    for factor, prefix in [(2**40, "Ti"), (2**30, "Gi"), (2**20, "Mi"), (2**10, "Ki")]:
        if abs(n) >= factor:
            return f"{n / factor:.2f} {prefix}B"
    return f"{n:.0f} B"


def format_seconds(t: float) -> str:
    """Adaptive time formatting from nanoseconds to minutes."""
    if t >= 60:
        return f"{t / 60:.2f} min"
    if t >= 1:
        return f"{t:.3f} s"
    if t >= 1e-3:
        return f"{t * 1e3:.3f} ms"
    if t >= 1e-6:
        return f"{t * 1e6:.3f} us"
    return f"{t * 1e9:.1f} ns"
