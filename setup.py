"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP 517/660
builds are unavailable; this file lets ``pip install -e .`` fall back to
``setup.py develop``. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
