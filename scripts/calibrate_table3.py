"""Fit per-GPU kernel efficiency and tensor power coefficients to paper Table III.

Run after any perf-model change; paste the printed constants into
src/repro/gpusim/specs.py. This is the documented provenance of the
calibration numbers (DESIGN.md section 2).
"""
import numpy as np
from repro.ccglib import model_gemm, GemmProblem, TABLE_III, Precision
from repro.gpusim import get_spec
import dataclasses

fits = {}
for row in TABLE_III:
    spec = get_spec(row.gpu)
    prob = GemmProblem(1, 8192, 8192, 8192) if row.precision is Precision.FLOAT16 else GemmProblem(1, 32768, 8192, 524288)
    prec_key = row.precision.value
    eff = dict(spec.gemm_efficiency)
    # iterate eff fit
    for _ in range(6):
        spec2 = dataclasses.replace(spec, gemm_efficiency=eff)
        c = model_gemm(spec2, row.precision, prob, row.params)
        model_tops = c.ops_per_second / 1e12
        eff[prec_key] = eff[prec_key] * row.tops / model_tops
    # fit tensor_w for target power
    spec2 = dataclasses.replace(spec, gemm_efficiency=eff)
    c = model_gemm(spec2, row.precision, prob, row.params)
    p_target = row.tops / row.tops_per_joule
    ut, um, us = c.detail["util_tensor"], c.detail["util_dram"], c.detail["util_smem"]
    pw = spec.power
    tensor_w = (p_target - pw.idle_w - pw.memory_w*um - pw.shared_w*us) / ut
    fits.setdefault(row.gpu, {})[prec_key] = (round(eff[prec_key], 4), round(tensor_w, 1), p_target, ut)
    print(f"{row.gpu:8s} {prec_key:8s} eff={eff[prec_key]:.4f} tensor_w={tensor_w:7.1f} P_target={p_target:6.1f} util_t={ut:.3f} model={c.ops_per_second/1e12:.1f}")
print()
for gpu, d in fits.items():
    print(gpu, d)
