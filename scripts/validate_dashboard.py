#!/usr/bin/env python
"""CI gate: structural validation of a rendered monitoring dashboard.

Parses the self-contained HTML page written by ``repro-bench --dashboard``
(:func:`repro.serve.obs.dashboard.render_dashboard`) with the standard
library's :class:`html.parser.HTMLParser` and fails on

* a missing doctype or ``<title>``,
* unbalanced non-void tags (a renderer that stopped closing what it
  opens),
* a missing dashboard section (``stats`` / ``series`` / ``alerts`` /
  ``blame`` / ``fleet`` ids),
* no inline ``<svg>`` charts at all,
* missing core sampler series names in the page text.

This is a structure gate, not a pixel test — byte-level drift of the
golden configuration is pinned separately by
``tests/serve/golden/serve_dashboard_small.sha256``.

Usage::

    python scripts/validate_dashboard.py DASHBOARD_HTML
"""

from __future__ import annotations

import sys
from html.parser import HTMLParser
from pathlib import Path

#: section ids every dashboard must render, in any order.
REQUIRED_SECTIONS = ("stats", "series", "alerts", "blame", "fleet")

#: sampler series that exist for every monitored service, whatever the
#: scenario (per-worker and cache series depend on the fleet/workload).
REQUIRED_SERIES = (
    "rate.arrival_hz",
    "rate.completed_hz",
    "rate.shed_hz",
    "queue.requests",
    "fleet.provisioned",
)

#: HTML void elements — never closed, excluded from balance checking.
VOID_TAGS = frozenset(
    "area base br col embed hr img input link meta source track wbr".split()
)


class _DashboardParser(HTMLParser):
    """Collects ids, tag balance, svg count, and text content."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.stack: list[str] = []
        self.problems: list[str] = []
        self.ids: set[str] = set()
        self.n_svg = 0
        self.title_parts: list[str] = []
        self.text_parts: list[str] = []

    def handle_starttag(self, tag: str, attrs) -> None:
        if tag not in VOID_TAGS:
            self.stack.append(tag)
        if tag == "svg":
            self.n_svg += 1
        for key, value in attrs:
            if key == "id" and value:
                self.ids.add(value)

    def handle_endtag(self, tag: str) -> None:
        if tag in VOID_TAGS:
            return
        if not self.stack:
            self.problems.append(f"closing </{tag}> with nothing open")
        elif self.stack[-1] != tag:
            self.problems.append(
                f"closing </{tag}> but <{self.stack[-1]}> is open (misnested)"
            )
            self.stack.pop()
        else:
            self.stack.pop()

    def handle_data(self, data: str) -> None:
        if self.stack and self.stack[-1] == "title":
            self.title_parts.append(data)
        self.text_parts.append(data)


def check(path: str) -> list[str]:
    """Return the list of problems found in one dashboard HTML file."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        return [f"cannot read dashboard {path!r}: {exc}"]
    problems: list[str] = []
    if not text.lstrip().lower().startswith("<!doctype html>"):
        problems.append("missing <!doctype html> prologue")
    parser = _DashboardParser()
    parser.feed(text)
    parser.close()
    problems += parser.problems
    if parser.stack:
        problems.append(f"unclosed tags at end of document: {parser.stack}")
    if not "".join(parser.title_parts).strip():
        problems.append("missing or empty <title>")
    for section in REQUIRED_SECTIONS:
        if section not in parser.ids:
            problems.append(f"missing dashboard section id={section!r}")
    if parser.n_svg == 0:
        problems.append("no inline <svg> charts in the page")
    page_text = "".join(parser.text_parts)
    for series in REQUIRED_SERIES:
        if series not in page_text:
            problems.append(f"core series {series!r} not on the page")
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: validate_dashboard.py DASHBOARD_HTML", file=sys.stderr)
        return 2
    problems = check(argv[0])
    if problems:
        for problem in problems:
            print(f"dashboard: {problem}", file=sys.stderr)
        return 1
    print(f"dashboard: {argv[0]} is structurally valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
