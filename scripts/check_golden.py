#!/usr/bin/env python
"""CI gate: the checked-in golden files must match their generators.

Every golden file under ``tests/serve/golden/`` is the rendered output of
a documented generator — ``golden_rows`` functions for the CSVs,
``repro.bench.serve.golden_trace`` for the Perfetto span-event trace of
the small serve run, and ``golden_dashboard_digest`` for the sha256 of
its monitored dashboard HTML. This script regenerates each one
and fails on any byte difference — catching un-blessed replay drift at
review time (the event loop, scheduler, estimates, or float formatting
changed and nobody re-blessed the golden) instead of in a later PR.

Usage::

    python scripts/check_golden.py            # verify (CI mode)
    python scripts/check_golden.py --bless    # regenerate in place

Blessing is deliberate: run with ``--bless``, eyeball the diff, and
commit the result alongside the change that moved the numbers.
"""

from __future__ import annotations

import difflib
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "serve" / "golden"


def _renderers():
    """Golden file name -> zero-argument callable rendering its CSV."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench import (
        serve,
        serve_autoscale,
        serve_pipeline,
        serve_priority,
        serve_resilience,
    )
    from repro.util.formatting import render_csv

    def render(rows_fn, *args):
        headers, rows = rows_fn(*args)
        return render_csv(headers, rows)

    return {
        "serve_priority_small.csv": lambda: render(serve_priority.golden_rows),
        # One diurnal day — serve_autoscale.GOLDEN_HORIZON_S, the same
        # constant the golden test reads (golden_rows' default).
        "serve_autoscale_small.csv": lambda: render(serve_autoscale.golden_rows),
        # One short storm — serve_resilience.GOLDEN_HORIZON_S — pinning all
        # three recovery arms (fault-free, no-recovery, resilient) at once.
        "serve_resilience_small.csv": lambda: render(serve_resilience.golden_rows),
        # One short mixed-DAG run — serve_pipeline.GOLDEN_HORIZON_S —
        # pinning both stage-placement arms (locality-aware, stage-blind)
        # of the end-to-end pipeline machinery at once.
        "serve_pipeline_small.csv": lambda: render(serve_pipeline.golden_rows),
        # Perfetto span-event trace of the small serve run — pins every
        # lifecycle edge (arrival through completion), not just aggregates.
        "serve_trace_small.json": serve.golden_trace,
        # sha256 of the monitored small serve run's dashboard HTML — pins
        # the sampler cadence, alert evaluation, and the rendering itself
        # without checking in tens of kilobytes of markup.
        "serve_dashboard_small.sha256": serve.golden_dashboard_digest,
    }


def main(argv: list[str]) -> int:
    bless = "--bless" in argv
    renderers = _renderers()
    problems: list[str] = []

    unregistered = sorted(
        p.name
        for pattern in ("*.csv", "*.json", "*.sha256")
        for p in GOLDEN_DIR.glob(pattern)
        if p.name not in renderers
    )
    if unregistered:
        problems.append(
            "golden files with no registered generator (add them to "
            f"scripts/check_golden.py): {', '.join(unregistered)}"
        )

    for name, render in renderers.items():
        path = GOLDEN_DIR / name
        fresh = render()
        if bless:
            path.write_text(fresh)
            print(f"blessed {path.relative_to(REPO_ROOT)}")
            continue
        if not path.exists():
            problems.append(f"{name}: golden file missing (run with --bless)")
            continue
        checked_in = path.read_text()
        if checked_in != fresh:
            diff = "".join(
                difflib.unified_diff(
                    checked_in.splitlines(keepends=True),
                    fresh.splitlines(keepends=True),
                    fromfile=f"checked-in/{name}",
                    tofile=f"regenerated/{name}",
                )
            )
            problems.append(f"{name}: drift from the generator\n{diff}")

    if problems and not bless:
        for problem in problems:
            print(f"golden-drift: {problem}", file=sys.stderr)
        print(
            "golden-drift: if the change is intentional, re-bless via "
            "`python scripts/check_golden.py --bless` and commit the diff",
            file=sys.stderr,
        )
        return 1
    if not bless:
        print(f"golden-drift: all {len(renderers)} golden files match")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
