#!/usr/bin/env python
"""CI gate: validate the combined JSON report of a full bench run.

The bench-smoke CI job runs every registered experiment in its quick
configuration (``python -m repro.bench --quick --output report.json``)
and then runs this checker over the report. The job fails when

* the CLI itself exited non-zero (pytest-level breakage),
* an experiment registered in :mod:`repro.bench.registry` is missing
  from the report (a module that silently stopped running),
* an experiment's entry lacks its required keys or has an empty title,
  findings list, or tables dict (a module that runs but reports nothing),
* the top-level ``backends`` block is missing, omits the always-present
  numpy backend, carries an empty version string, or disagrees with what
  :func:`repro.backend.available_backends` detects on this host.

This is deliberately a *smoke* gate: it checks that every experiment
still runs end to end and reports in the expected shape, not that the
paper-scale findings pass — those bars live in the experiments
themselves and in the pytest suite.

Usage::

    python scripts/bench_smoke.py report.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REQUIRED_KEYS = ("name", "title", "findings", "tables", "elapsed_s")
#: keys that must also be non-empty for the experiment to count as alive.
NON_EMPTY_KEYS = ("title", "findings", "tables")


def check(report_path: str) -> list[str]:
    """Return the list of problems found in one combined JSON report."""
    # Imported here so `--help`-style failures don't need the package.
    from repro.bench.registry import EXPERIMENTS

    problems: list[str] = []
    try:
        payload = json.loads(Path(report_path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot read report {report_path!r}: {exc}"]
    entries = {}
    for entry in payload.get("experiments", []):
        name = entry.get("name") if isinstance(entry, dict) else None
        if not isinstance(name, str):
            problems.append(f"malformed experiment entry without a name: {entry!r:.80}")
            continue
        entries[name] = entry
    for name in EXPERIMENTS:
        entry = entries.get(name)
        if entry is None:
            problems.append(f"{name}: missing from the report")
            continue
        for key in REQUIRED_KEYS:
            if key not in entry:
                problems.append(f"{name}: missing report key {key!r}")
        for key in NON_EMPTY_KEYS:
            if key in entry and not entry[key]:
                problems.append(f"{name}: report key {key!r} is empty")
        for table, series in entry.get("tables", {}).items():
            if not series.get("headers") or not series.get("rows"):
                problems.append(f"{name}: table {table!r} has no headers or rows")
        # Serving experiments publish a metrics-registry snapshot and a
        # burn-rate alerting snapshot of their headline run; a missing or
        # empty block means the wiring regressed.
        if name.startswith("serve"):
            metrics = entry.get("metrics")
            if not isinstance(metrics, dict) or not metrics.get("counters"):
                problems.append(f"{name}: missing or empty 'metrics' block")
            alerts = entry.get("alerts")
            if not isinstance(alerts, dict) or not alerts.get("rules"):
                problems.append(f"{name}: missing or empty 'alerts' block")
            elif not isinstance(alerts.get("history"), list):
                problems.append(f"{name}: 'alerts' block lacks a 'history' list")
            # ... and the availability of their headline run: a missing
            # value means the resilience axis silently stopped reporting;
            # a value outside [0, 1] means the accounting broke.
            availability = entry.get("availability")
            if not isinstance(availability, (int, float)) or isinstance(
                availability, bool
            ):
                problems.append(f"{name}: missing or non-numeric 'availability'")
            elif not 0.0 <= availability <= 1.0:
                problems.append(
                    f"{name}: 'availability' must be in [0, 1], got {availability}"
                )
    unknown = sorted(set(entries) - set(EXPERIMENTS))
    if unknown:
        problems.append(f"report names unknown experiments: {', '.join(unknown)}")
    problems.extend(check_backends_block(payload))
    return problems


def check_backends_block(payload: dict) -> list[str]:
    """Problems with the report's top-level ``backends`` block.

    The block must list every array backend detected on this host (numpy
    always among them) with a non-empty version string — an absent or
    stale block means the backend registry wiring regressed.
    """
    from repro.backend import available_backends

    block = payload.get("backends")
    if not isinstance(block, dict) or not block:
        return ["missing or empty top-level 'backends' block"]
    problems: list[str] = []
    if "numpy" not in block:
        problems.append("'backends' block omits the always-present numpy backend")
    for name, version in block.items():
        if not isinstance(version, str) or not version.strip():
            problems.append(f"'backends' block has no version string for {name!r}")
    detected = set(available_backends())
    if set(block) != detected:
        problems.append(
            f"'backends' block lists {sorted(block)} but this host detects "
            f"{sorted(detected)}"
        )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: bench_smoke.py REPORT_JSON", file=sys.stderr)
        return 2
    problems = check(argv[0])
    if problems:
        for problem in problems:
            print(f"bench-smoke: {problem}", file=sys.stderr)
        return 1
    from repro.bench.registry import EXPERIMENTS

    print(f"bench-smoke: all {len(EXPERIMENTS)} experiments reported cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
