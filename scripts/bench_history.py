#!/usr/bin/env python
"""CI gate: track bench headline metrics across runs and flag regressions.

Appends a summarized row from a combined ``--output`` JSON report to a
``history.jsonl`` file and/or checks the newest row against the mean of a
trailing window of comparable rows (same ``--quick`` flag). The tracked
metrics and their per-metric tolerances live in
:mod:`repro.bench.history` (``SPECS``): throughput down, p99 up, or shed
up past tolerance fails the gate.

Usage::

    python scripts/bench_history.py --history benchmarks/history.jsonl \\
        --append report.json --label ci --quick --check
    python scripts/bench_history.py --history benchmarks/history.jsonl --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.history import (
        DEFAULT_WINDOW,
        append_history,
        check,
        load_history,
        summarize,
    )
    from repro.errors import ShapeError

    parser = argparse.ArgumentParser(
        prog="bench_history",
        description="append/check bench headline metrics across runs",
    )
    parser.add_argument(
        "--history",
        default=str(REPO_ROOT / "benchmarks" / "history.jsonl"),
        help="history JSONL file (default: benchmarks/history.jsonl)",
    )
    parser.add_argument(
        "--append",
        metavar="REPORT",
        help="summarize this combined --output JSON report into a new row",
    )
    parser.add_argument("--label", default="", help="free-form label stored on the row")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="mark the row as a --quick run (rows only compare within a flag)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if the newest row regressed vs the trailing window",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        help=f"trailing rows to average against (default {DEFAULT_WINDOW})",
    )
    args = parser.parse_args(argv)
    if not args.append and not args.check:
        parser.error("nothing to do: pass --append REPORT and/or --check")

    try:
        if args.append:
            payload = json.loads(Path(args.append).read_text())
            row = summarize(payload, label=args.label, quick=args.quick)
            append_history(args.history, row)
            print(
                f"bench-history: appended {len(row['metrics'])} metric(s) "
                f"to {args.history}"
            )
        if args.check:
            rows = load_history(args.history)
            problems = check(rows, window=args.window)
            if problems:
                for problem in problems:
                    print(f"bench-history: regression: {problem}", file=sys.stderr)
                return 1
            print(
                f"bench-history: newest of {len(rows)} row(s) within tolerance "
                f"(window {args.window})"
            )
    except (OSError, json.JSONDecodeError, ShapeError) as exc:
        print(f"bench-history: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
