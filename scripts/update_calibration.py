"""Re-fit gemm_efficiency + tensor_w after a perf-model change and patch specs.py in place."""
import dataclasses, re
from repro.ccglib import model_gemm, GemmProblem, TABLE_III, Precision
from repro.gpusim import get_spec

fits = {}
for row in TABLE_III:
    spec = get_spec(row.gpu)
    prob = GemmProblem(1, 8192, 8192, 8192) if row.precision is Precision.FLOAT16 else GemmProblem(1, 32768, 8192, 524288)
    key = row.precision.value
    eff = dict(spec.gemm_efficiency)
    for _ in range(8):
        c = model_gemm(dataclasses.replace(spec, gemm_efficiency=eff), row.precision, prob, row.params)
        eff[key] *= row.tops / (c.ops_per_second / 1e12)
        eff[key] = min(eff[key], 0.999)
    c = model_gemm(dataclasses.replace(spec, gemm_efficiency=eff), row.precision, prob, row.params)
    p_target = row.tops / row.tops_per_joule
    ut, um, us = c.detail["util_tensor"], c.detail["util_dram"], c.detail["util_smem"]
    pw = spec.power
    tw = (p_target - pw.idle_w - pw.memory_w * um - pw.shared_w * us) / ut
    fits.setdefault(row.gpu, {})[key] = (round(eff[key], 4), round(tw, 1))
    print(f"{row.gpu:8s} {key:8s} eff={eff[key]:.4f} tensor_w={tw:7.1f} model={c.ops_per_second/1e12:7.1f} paper={row.tops:.0f}")

path = "src/repro/gpusim/specs.py"
src = open(path).read()
for gpu, d in fits.items():
    # patch gemm_efficiency dict line
    if "int1" in d:
        new_eff = f'gemm_efficiency={{"float16": {d["float16"][0]}, "int1": {d["int1"][0]}}}'
        new_tw = f'tensor_w={{"float16": {d["float16"][1]}, "int1": {d["int1"][1]}}}'
    else:
        new_eff = f'gemm_efficiency={{"float16": {d["float16"][0]}}}'
        new_tw = f'tensor_w={{"float16": {d["float16"][1]}}}'
    # locate the block for this GPU by name= marker, replace following matches
    pattern_eff = re.compile(rf'(name="{gpu}".*?)gemm_efficiency=\{{[^}}]*\}}', re.S)
    src, n1 = pattern_eff.subn(rf"\1{new_eff}", src, count=1)
    pattern_tw = re.compile(rf'(name="{gpu}".*?)tensor_w=\{{[^}}]*\}}', re.S)
    src, n2 = pattern_tw.subn(rf"\1{new_tw}", src, count=1)
    assert n1 == 1 and n2 == 1, (gpu, n1, n2)
open(path, "w").write(src)
print("specs.py patched")
