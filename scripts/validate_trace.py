#!/usr/bin/env python
"""CI gate: validate an exported Perfetto ``trace_event`` JSON file.

The bench-smoke CI job exports a span-event trace for one serving
experiment (``python -m repro.bench serve --quick --trace trace.json``)
and then runs this checker over the file. The job fails when

* the file is not JSON or lacks the ``traceEvents`` array,
* an event lacks the keys its phase requires (``ph``/``pid``/``tid``/
  ``ts`` everywhere; ``dur`` on complete slices; ``id`` on async and
  flow events; numeric ``args`` on counter samples),
* a phase letter is outside the trace_event vocabulary the exporter
  emits (``M X b e s f i C``),
* timestamps are negative or non-monotonic (the exporter sorts events
  by ``ts``; an out-of-order event means the sort — or the simulation
  clock feeding it — broke),
* an async span is unbalanced (a request that began and never ended,
  or ended twice),
* a counter sample is negative (every exported counter is a count or a
  cumulative sum — a negative value means the accounting broke),
* an alert instant is malformed: missing ``id``/``scope``/``rule``/
  ``state`` args, an unknown state, a repeated state for one alert id,
  or a lifecycle order violation (``firing`` only after ``pending``,
  ``resolved`` only after ``firing``, ``cancelled`` only after a
  ``pending`` that never fired, nothing after a terminal state),
* a fault-lifecycle instant (``crash``/``slow``/``retry``/
  ``request_failed``/``hedge_launched``/``hedge_resolved``/
  ``shard_recovered``) lacks its required args, a ``retry`` overruns its
  own declared budget, or a ``hedge_resolved`` reports negative waste,
* a pipeline-stage span (``cat: "stage"``) begins outside its request's
  async span or ends after it — stage spans must nest inside the
  request lifecycle span that owns them,
* a ``stage_dep`` flow step (``ph: "f"``) arrives with no earlier
  matching flow start (``ph: "s"``) for its id — a dependency arrow
  into a stage whose producing stage never completed.

This is a *format* gate, not a semantic one: it proves any bench trace
opens cleanly in ``ui.perfetto.dev``, not that the spans mean the right
thing — the semantic bars live in ``tests/serve/test_obs.py``.

Usage::

    python scripts/validate_trace.py trace.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: every phase letter the exporter emits (subset of the trace_event spec).
KNOWN_PHASES = frozenset("MXbesfiC")
#: phases exempt from the monotonicity walk (metadata is pinned at ts 0).
METADATA_PHASES = frozenset("M")

#: every alert lifecycle state the AlertEngine emits as a trace instant.
ALERT_STATES = frozenset({"pending", "firing", "resolved", "cancelled"})
#: states after which an alert id must never emit again.
ALERT_TERMINAL = frozenset({"resolved", "cancelled"})

#: fault-lifecycle instants and the args each must carry (values may be 0,
#: so presence is checked with ``in``, not truthiness).
FAULT_INSTANT_ARGS = {
    "crash": ("worker", "device", "lost_batches", "lost_requests"),
    "slow": ("worker", "device", "factor"),
    "retry": ("rid", "attempt", "budget"),
    "request_failed": ("rid", "reason"),
    "hedge_launched": ("bid", "primary", "hedge"),
    "hedge_resolved": ("bid", "winner", "wasted_ms"),
    "shard_recovered": ("bid", "shard", "from", "to"),
}


def _check_fault(where: str, name: str, args: object) -> list[str]:
    """One fault-lifecycle instant against its required-args table."""
    if not isinstance(args, dict):
        return [f"{where}: fault instant needs an 'args' object"]
    missing = [k for k in FAULT_INSTANT_ARGS[name] if k not in args]
    if missing:
        return [f"{where}: fault instant missing args {missing}"]
    problems: list[str] = []
    if name == "retry":
        attempt, budget = args["attempt"], args["budget"]
        if not isinstance(attempt, int) or attempt < 1:
            problems.append(f"{where}: retry attempt must be a positive int, got {attempt!r}")
        elif isinstance(budget, int) and attempt > budget:
            problems.append(f"{where}: retry attempt {attempt} overruns budget {budget}")
    if name == "hedge_resolved":
        wasted = args["wasted_ms"]
        if not isinstance(wasted, (int, float)) or isinstance(wasted, bool) or wasted < 0:
            problems.append(
                f"{where}: hedge_resolved wasted_ms must be non-negative, got {wasted!r}"
            )
    return problems


def _check_alert(
    where: str, args: object, alert_states: dict[object, list[str]]
) -> list[str]:
    """One alert instant against the per-id lifecycle state machine."""
    if not isinstance(args, dict):
        return [f"{where}: alert instant needs an 'args' object"]
    missing = [k for k in ("id", "scope", "rule", "state") if not args.get(k)]
    if missing:
        return [f"{where}: alert instant missing args {missing}"]
    state = args["state"]
    if state not in ALERT_STATES:
        return [f"{where}: unknown alert state {state!r}"]
    seen = alert_states.setdefault(args["id"], [])
    problems: list[str] = []
    if seen and seen[-1] in ALERT_TERMINAL:
        problems.append(f"{where}: alert {args['id']!r} emits {state!r} after {seen[-1]!r}")
    elif state in seen:
        problems.append(f"{where}: alert {args['id']!r} repeats state {state!r}")
    elif state == "pending" and seen:
        problems.append(f"{where}: alert {args['id']!r} re-enters 'pending'")
    elif state == "firing" and "pending" not in seen:
        problems.append(f"{where}: alert {args['id']!r} fires without 'pending'")
    elif state == "resolved" and "firing" not in seen:
        problems.append(f"{where}: alert {args['id']!r} resolves without 'firing'")
    elif state == "cancelled" and ("firing" in seen or "pending" not in seen):
        problems.append(
            f"{where}: alert {args['id']!r} cancels "
            + ("after firing" if "firing" in seen else "without 'pending'")
        )
    seen.append(state)
    return problems


def check(trace_path: str) -> list[str]:
    """Return the list of format problems found in one trace file."""
    try:
        payload = json.loads(Path(trace_path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot read trace {trace_path!r}: {exc}"]
    if not isinstance(payload, dict) or not isinstance(payload.get("traceEvents"), list):
        return ["top level must be an object with a 'traceEvents' array"]

    problems: list[str] = []
    open_async: dict[tuple[object, object], int] = {}
    flow_starts: set[object] = set()
    alert_states: dict[object, list[str]] = {}
    last_ts = 0.0
    for i, event in enumerate(payload["traceEvents"]):
        if not isinstance(event, dict):
            problems.append(f"event #{i}: not an object: {event!r:.60}")
            continue
        ph = event.get("ph")
        where = f"event #{i} (ph={ph!r}, name={event.get('name')!r})"
        if ph not in KNOWN_PHASES:
            problems.append(f"{where}: unknown phase")
            continue
        for key in ("pid", "tid", "ts"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number, got {ts!r}")
            continue
        if ph not in METADATA_PHASES:
            if ts < last_ts:
                problems.append(
                    f"{where}: non-monotonic ts {ts} after {last_ts} — "
                    "the exporter's sort or the simulation clock broke"
                )
            last_ts = max(last_ts, ts)
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                problems.append(f"{where}: complete slice needs a non-negative 'dur'")
        if ph in "besf" and "id" not in event:
            problems.append(f"{where}: async/flow event needs an 'id'")
        if ph in "be":
            key = (event.get("pid"), event.get("id"))
            is_stage = event.get("cat") == "stage"
            if ph == "b" and is_stage and open_async.get(key, 0) < 1:
                problems.append(
                    f"{where}: stage span begins outside its request span"
                )
            open_async[key] = open_async.get(key, 0) + (1 if ph == "b" else -1)
            if open_async[key] < 0:
                problems.append(f"{where}: async end with no matching begin")
            elif ph == "e" and is_stage and open_async[key] < 1:
                problems.append(
                    f"{where}: stage span ends after its request span closed"
                )
        if ph == "s" and event.get("name") == "stage_dep":
            flow_starts.add(event.get("id"))
        if ph == "f" and event.get("name") == "stage_dep":
            if event.get("id") not in flow_starts:
                problems.append(
                    f"{where}: stage_dep flow step with no earlier flow start"
                )
        if ph == "C":
            series = event.get("args")
            if not isinstance(series, dict) or not series:
                problems.append(f"{where}: counter needs a non-empty 'args' object")
            elif not all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in series.values()
            ):
                problems.append(f"{where}: counter values must be numbers")
            else:
                negative = {k: v for k, v in series.items() if v < 0}
                if negative:
                    problems.append(
                        f"{where}: counter values must be non-negative, got {negative}"
                    )
        if ph == "i" and event.get("name") == "alert":
            problems += _check_alert(where, event.get("args"), alert_states)
        if ph == "i" and event.get("name") in FAULT_INSTANT_ARGS:
            problems += _check_fault(where, event["name"], event.get("args"))

    unclosed = sorted(str(key) for key, depth in open_async.items() if depth > 0)
    if unclosed:
        problems.append(
            f"{len(unclosed)} async span(s) never ended: {', '.join(unclosed[:5])}"
        )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: validate_trace.py TRACE_JSON", file=sys.stderr)
        return 2
    problems = check(argv[0])
    if problems:
        for problem in problems[:40]:
            print(f"validate-trace: {problem}", file=sys.stderr)
        if len(problems) > 40:
            print(f"validate-trace: ... and {len(problems) - 40} more", file=sys.stderr)
        return 1
    n = len(json.loads(Path(argv[0]).read_text())["traceEvents"])
    print(f"validate-trace: {argv[0]} is well-formed trace_event JSON ({n} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
