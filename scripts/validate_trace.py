#!/usr/bin/env python
"""CI gate: validate an exported Perfetto ``trace_event`` JSON file.

The bench-smoke CI job exports a span-event trace for one serving
experiment (``python -m repro.bench serve --quick --trace trace.json``)
and then runs this checker over the file. The job fails when

* the file is not JSON or lacks the ``traceEvents`` array,
* an event lacks the keys its phase requires (``ph``/``pid``/``tid``/
  ``ts`` everywhere; ``dur`` on complete slices; ``id`` on async and
  flow events; numeric ``args`` on counter samples),
* a phase letter is outside the trace_event vocabulary the exporter
  emits (``M X b e s f i C``),
* timestamps are negative or non-monotonic (the exporter sorts events
  by ``ts``; an out-of-order event means the sort — or the simulation
  clock feeding it — broke),
* an async span is unbalanced (a request that began and never ended,
  or ended twice).

This is a *format* gate, not a semantic one: it proves any bench trace
opens cleanly in ``ui.perfetto.dev``, not that the spans mean the right
thing — the semantic bars live in ``tests/serve/test_obs.py``.

Usage::

    python scripts/validate_trace.py trace.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: every phase letter the exporter emits (subset of the trace_event spec).
KNOWN_PHASES = frozenset("MXbesfiC")
#: phases exempt from the monotonicity walk (metadata is pinned at ts 0).
METADATA_PHASES = frozenset("M")


def check(trace_path: str) -> list[str]:
    """Return the list of format problems found in one trace file."""
    try:
        payload = json.loads(Path(trace_path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot read trace {trace_path!r}: {exc}"]
    if not isinstance(payload, dict) or not isinstance(payload.get("traceEvents"), list):
        return ["top level must be an object with a 'traceEvents' array"]

    problems: list[str] = []
    open_async: dict[tuple[object, object], int] = {}
    last_ts = 0.0
    for i, event in enumerate(payload["traceEvents"]):
        if not isinstance(event, dict):
            problems.append(f"event #{i}: not an object: {event!r:.60}")
            continue
        ph = event.get("ph")
        where = f"event #{i} (ph={ph!r}, name={event.get('name')!r})"
        if ph not in KNOWN_PHASES:
            problems.append(f"{where}: unknown phase")
            continue
        for key in ("pid", "tid", "ts"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number, got {ts!r}")
            continue
        if ph not in METADATA_PHASES:
            if ts < last_ts:
                problems.append(
                    f"{where}: non-monotonic ts {ts} after {last_ts} — "
                    "the exporter's sort or the simulation clock broke"
                )
            last_ts = max(last_ts, ts)
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                problems.append(f"{where}: complete slice needs a non-negative 'dur'")
        if ph in "besf" and "id" not in event:
            problems.append(f"{where}: async/flow event needs an 'id'")
        if ph in "be":
            key = (event.get("pid"), event.get("id"))
            open_async[key] = open_async.get(key, 0) + (1 if ph == "b" else -1)
            if open_async[key] < 0:
                problems.append(f"{where}: async end with no matching begin")
        if ph == "C":
            series = event.get("args")
            if not isinstance(series, dict) or not series:
                problems.append(f"{where}: counter needs a non-empty 'args' object")
            elif not all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in series.values()
            ):
                problems.append(f"{where}: counter values must be numbers")

    unclosed = sorted(str(key) for key, depth in open_async.items() if depth > 0)
    if unclosed:
        problems.append(
            f"{len(unclosed)} async span(s) never ended: {', '.join(unclosed[:5])}"
        )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: validate_trace.py TRACE_JSON", file=sys.stderr)
        return 2
    problems = check(argv[0])
    if problems:
        for problem in problems[:40]:
            print(f"validate-trace: {problem}", file=sys.stderr)
        if len(problems) > 40:
            print(f"validate-trace: ... and {len(problems) - 40} more", file=sys.stderr)
        return 1
    n = len(json.loads(Path(argv[0]).read_text())["traceEvents"])
    print(f"validate-trace: {argv[0]} is well-formed trace_event JSON ({n} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
