"""Benchmark fixtures.

Each benchmark measures the real wall-clock cost of regenerating one of the
paper's tables/figures on the simulated substrate, and attaches the
reproduction's headline numbers via ``benchmark.extra_info`` so the JSON
output doubles as the experiment record.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(99)
