"""Bench: paper Fig 7 — LOFAR beamformer vs receiver count."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.radioastronomy import (
    LOFARBeamformer,
    Observation,
    PointSource,
    ReferenceBeamformer,
    beam_grid,
    generate_station_data,
    lofar_like_layout,
    steering_weights,
)
from repro.bench.fig7 import receiver_sweep
from repro.ccglib.precision import Precision
from repro.gpusim.device import Device, ExecutionMode
from repro.util.units import tera


def test_receiver_sweep_all_gpus(benchmark):
    """The full Fig 7 left panel: 7 GPUs x receiver sweep (dry-run)."""
    ks = receiver_sweep(quick=True)

    def sweep():
        out = {}
        for gpu in ("AD4000", "A100", "GH200", "W7700", "MI210", "MI300X", "MI300A"):
            device = Device(gpu, ExecutionMode.DRY_RUN)
            out[gpu] = [
                LOFARBeamformer(device, 1024, k, 1024, 256).predict_cost().ops_per_second / tera
                for k in ks
            ]
        return out

    curves = benchmark(sweep)
    benchmark.extra_info["tflops_at_512"] = {g: round(v[-1], 0) for g, v in curves.items()}
    assert curves["MI300X"][-1] > curves["GH200"][-1] > curves["A100"][-1]


def test_reference_comparison(benchmark):
    """TCBF/reference speedup and energy curves on the A100."""
    ks = [8, 48, 128, 512]

    def compare():
        device = Device("A100", ExecutionMode.DRY_RUN)
        rows = []
        for k in ks:
            t = LOFARBeamformer(device, 1024, k, 1024, 256).predict_cost()
            r = ReferenceBeamformer(device, 1024, k, 1024, 256).predict_cost()
            rows.append((k, t.ops_per_second / r.ops_per_second,
                         t.ops_per_joule / r.ops_per_joule))
        return rows

    rows = benchmark(compare)
    benchmark.extra_info["speedups"] = {k: round(s, 1) for k, s, _ in rows}
    benchmark.extra_info["energy_ratios"] = {k: round(e, 1) for k, _, e in rows}
    assert rows[-1][1] > 10  # paper: up to 20x
    assert rows[0][1] < 2  # crossover at very small receiver counts


def test_functional_beamforming_block(benchmark):
    """Wall-clock of a real (functional) beamforming block."""
    layout = lofar_like_layout(32)
    obs = Observation(layout=layout, n_channels=8, n_samples=256)
    data = generate_station_data(obs, [PointSource(l=0.005, m=0.0, flux=2.0)])
    weights = steering_weights(layout, obs.channel_frequencies(), beam_grid(16))
    device = Device("A100")
    bf = LOFARBeamformer(device, 16, 32, 256, 8, precision=Precision.FLOAT16)

    out = benchmark(bf.form_beams, weights, data)
    assert out.beams.shape == (8, 16, 256)
    benchmark.extra_info["modelled_tflops"] = round(out.cost.ops_per_second / tera, 2)


def test_fig7_full_experiment(benchmark):
    from repro.bench.fig7 import run

    result = benchmark.pedantic(run, rounds=1, iterations=1, kwargs={"quick": True})
    headers, rows = result.tables["summary"]
    benchmark.extra_info["summary"] = {r[0]: r[1] for r in rows}
