"""Bench: paper Fig 3 — roofline analysis of the four benchmark shapes."""

from __future__ import annotations

import pytest

from repro.ccglib.perfmodel import model_gemm
from repro.ccglib.precision import Precision
from repro.ccglib.tuning import published_tuning
from repro.gpusim.specs import get_spec
from repro.roofline.model import FIG3_PROBLEMS, build_roofline, place_point


@pytest.mark.parametrize("gpu", ["A100", "GH200", "MI300X"])
def test_roofline_construction(benchmark, gpu):
    roofline = benchmark(build_roofline, get_spec(gpu))
    benchmark.extra_info["ceilings_tops"] = {
        name: round(peak / 1e12, 0) for name, peak in roofline.peaks_ops.items()
    }
    assert roofline.mem_bandwidth_bytes > 0


@pytest.mark.parametrize(
    "precision,size",
    list(FIG3_PROBLEMS),
    ids=lambda v: getattr(v, "value", v),
)
def test_fig3_point_on_a100(benchmark, precision, size):
    spec = get_spec("A100")
    problem = FIG3_PROBLEMS[(precision, size)]
    params = published_tuning("A100", precision).params

    def place():
        cost = model_gemm(spec, precision, problem, params)
        return place_point(spec, precision, problem, cost, size)

    point = benchmark(place)
    benchmark.extra_info["arithmetic_intensity"] = round(point.arithmetic_intensity, 1)
    benchmark.extra_info["fraction_of_roofline"] = round(point.fraction_of_roofline, 3)
    benchmark.extra_info["memory_bound"] = point.memory_bound
    # Paper reading: small memory-bound; big compute-bound at 50-85% of peak.
    if size == "small":
        assert point.memory_bound
        assert point.fraction_of_roofline > 0.8
    else:
        assert not point.memory_bound


def test_fig3_full_experiment(benchmark):
    from repro.bench.fig3 import run

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert "roofline" in result.tables
