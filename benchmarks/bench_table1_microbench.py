"""Bench: paper Table I — tensor-core micro-benchmarks.

Times the full 19-cell micro-benchmark matrix and records every
measured-vs-paper ratio in the benchmark metadata.
"""

from __future__ import annotations

from repro.bench.table1 import PAPER_TABLE1, run as run_table1_experiment
from repro.cudapeak.microbench import run_table1


def test_table1_microbenchmarks(benchmark):
    results = benchmark(run_table1)
    assert len(results) == 19
    ratios = {}
    for r in results:
        op = r.bit_op.value if r.bit_op else None
        paper = PAPER_TABLE1.get((r.gpu, r.precision, str(r.fragment), op))
        if paper:
            ratios[f"{r.gpu}/{r.precision}/{r.fragment}/{op}"] = round(
                r.measured_tops / paper, 3
            )
    benchmark.extra_info["measured_over_paper"] = ratios
    assert all(0.89 <= v <= 1.11 for v in ratios.values())


def test_table1_full_experiment(benchmark):
    result = benchmark.pedantic(run_table1_experiment, rounds=3, iterations=1)
    benchmark.extra_info["findings"] = result.findings
    assert result.tables
