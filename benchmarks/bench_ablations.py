"""Bench: design-choice ablations (DESIGN.md §5).

Times the ablation experiment and asserts the direction of each design
decision the paper made.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.ablations import run as run_ablations
from repro.ccglib.perfmodel import model_gemm
from repro.ccglib.precision import Precision
from repro.ccglib.tuning import published_tuning
from repro.gpusim.arch import BitOp, FRAG_INT1_16x8x256, FRAG_INT1_8x8x128
from repro.gpusim.specs import get_spec
from repro.kerneltuner.tuner import PAPER_TUNING_PROBLEMS


def test_ablation_experiment(benchmark):
    result = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    benchmark.extra_info["findings"] = result.findings
    assert set(result.tables) == {
        "complex_decomposition", "xor_vs_and", "fragment_layout",
        "transpose_free", "pipeline_depth",
    }


@pytest.mark.parametrize("gpu", ["AD4000", "A100", "GH200"])
def test_bit_op_auto_switch_is_optimal(benchmark, gpu):
    spec = get_spec(gpu)
    params = published_tuning(gpu, Precision.INT1).params
    problem = PAPER_TUNING_PROBLEMS[Precision.INT1]

    def both():
        xor = model_gemm(spec, Precision.INT1, problem, params, bit_op=BitOp.XOR)
        and_ = model_gemm(spec, Precision.INT1, problem, params, bit_op=BitOp.AND)
        auto = model_gemm(spec, Precision.INT1, problem, params)
        return xor, and_, auto

    xor, and_, auto = benchmark(both)
    assert auto.ops_per_second == max(xor.ops_per_second, and_.ops_per_second)
    benchmark.extra_info["auto_op"] = auto.name


@pytest.mark.parametrize("gpu", ["AD4000", "A100", "GH200"])
def test_large_fragment_never_slower(benchmark, gpu):
    spec = get_spec(gpu)
    params = published_tuning(gpu, Precision.INT1).params
    problem = PAPER_TUNING_PROBLEMS[Precision.INT1]
    op = spec.caps.preferred_bit_op

    def both():
        small = model_gemm(spec, Precision.INT1, problem, params, bit_op=op,
                           fragment=FRAG_INT1_8x8x128)
        big = model_gemm(spec, Precision.INT1, problem, params, bit_op=op,
                         fragment=FRAG_INT1_16x8x256)
        return small, big

    small, big = benchmark(both)
    assert big.ops_per_second >= small.ops_per_second * 0.999
    benchmark.extra_info["speedup_16x8x256"] = round(
        big.ops_per_second / small.ops_per_second, 2
    )


def test_pipeline_depth_direction(benchmark):
    """2-stage async buffering beats single-stage on NVIDIA fp16."""
    spec = get_spec("A100")
    base = published_tuning("A100", Precision.FLOAT16).params
    problem = PAPER_TUNING_PROBLEMS[Precision.FLOAT16]

    def sweep():
        return [
            model_gemm(spec, Precision.FLOAT16, problem,
                       dataclasses.replace(base, num_buffers=nb)).ops_per_second
            for nb in (1, 2, 4)
        ]

    one, two, four = benchmark(sweep)
    assert two > one
    assert two >= four  # fp16 stages are large; 2 is the sweet spot
