"""Bench: paper Fig 2 — the auto-tuning sweep itself.

Times brute-force tuning of the GEMM kernel (the ~400-point search space
evaluated against the analytic device model) per device class, and records
the tuned optima.
"""

from __future__ import annotations

import pytest

from repro.ccglib.precision import Precision
from repro.gpusim.specs import get_spec
from repro.kerneltuner.tuner import tune_gemm


@pytest.mark.parametrize(
    "gpu,precision",
    [("A100", Precision.FLOAT16), ("MI300X", Precision.FLOAT16), ("GH200", Precision.INT1)],
    ids=lambda v: getattr(v, "value", v),
)
def test_brute_force_tuning(benchmark, gpu, precision):
    spec = get_spec(gpu)
    result = benchmark(tune_gemm, spec, precision)
    benchmark.extra_info["best_params"] = str(result.best_params)
    benchmark.extra_info["best_tops"] = round(result.best.metrics["tops"], 1)
    benchmark.extra_info["best_tops_per_joule"] = round(
        result.best.metrics["tops_per_joule"], 2
    )
    benchmark.extra_info["valid_configs"] = len(result.records)
    assert result.best.metrics["tops"] > 0


def test_fig2_full_experiment(benchmark):
    from repro.bench.fig2 import run

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    headers, rows = result.tables["summary"]
    benchmark.extra_info["summary"] = {r[0] + "/" + r[1]: r[2] for r in rows}
    assert len(rows) == 10  # 7 fp16 + 3 int1
