"""Bench: paper Fig 5 — ultrasound frames/s vs voxel count."""

from __future__ import annotations

import pytest

from repro.apps.ultrasound.realtime import (
    FULL_VOLUME_VOXELS,
    REQUIRED_FPS,
    THREE_PLANES_VOXELS,
    default_voxel_sweep,
    frames_per_second,
    max_realtime_voxels,
    sweep_voxels,
)
from repro.gpusim.specs import INT1_GPUS, get_spec


@pytest.mark.parametrize("gpu", list(INT1_GPUS))
def test_voxel_sweep(benchmark, gpu):
    spec = get_spec(gpu)
    voxels = default_voxel_sweep(12)
    points = benchmark(sweep_voxels, spec, voxels)
    benchmark.extra_info["fps_at_three_planes"] = round(points[0].fps, 0)
    benchmark.extra_info["fps_at_full_volume"] = round(points[-1].fps, 0)
    # paper structure: planes real-time, full volume not.
    assert points[0].fps > REQUIRED_FPS
    assert points[-1].fps < REQUIRED_FPS


def test_gh200_realtime_fraction(benchmark):
    spec = get_spec("GH200")
    limit = benchmark(max_realtime_voxels, spec)
    fraction = limit / FULL_VOLUME_VOXELS
    benchmark.extra_info["realtime_voxel_fraction"] = round(fraction, 3)
    benchmark.extra_info["paper_fraction"] = 0.85
    assert 0.75 <= fraction <= 0.95


def test_fig5_full_experiment(benchmark):
    from repro.bench.fig5 import run

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    headers, rows = result.tables["summary"]
    benchmark.extra_info["summary"] = {r[0]: r[3] for r in rows}
    assert len(rows) == 3
