"""Bench: wall-clock throughput of the functional kernels themselves.

These measure the *simulator's* real compute speed (NumPy on the host),
not modelled GPU time — useful to track regressions in the functional
paths that tests and examples depend on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccglib.bit_gemm import complex_bit_gemm
from repro.ccglib.complex_mma import complex_mma_f16
from repro.ccglib.packing import pack_sign_planar
from repro.ccglib.transpose import planar_to_kmajor, tile_planar
from repro.gpusim.arch import BitOp
from repro.util.bits import popcount


@pytest.fixture(scope="module")
def data(rng=np.random.default_rng(3)):
    m, n, k = 128, 96, 4096
    a = rng.normal(size=(2, m, k)).astype(np.float32)
    b = rng.normal(size=(2, k, n)).astype(np.float32)
    words = k // 32
    a_bits = rng.integers(0, 2**32, size=(2, m, words), dtype=np.uint32)
    b_bits = rng.integers(0, 2**32, size=(2, n, words), dtype=np.uint32)
    return a, b, a_bits, b_bits, (m, n, k)


def test_complex_mma_f16_throughput(benchmark, data):
    a, b, *_ , shape = data
    m, n, k = shape
    out = benchmark(complex_mma_f16, a, b)
    assert out.shape == (2, m, n)
    benchmark.extra_info["useful_ops"] = 8 * m * n * k


def test_packed_bit_gemm_xor_throughput(benchmark, data):
    *_, a_bits, b_bits, shape = data
    m, n, k = shape
    out = benchmark(complex_bit_gemm, a_bits, b_bits, k, BitOp.XOR)
    assert out.shape == (2, m, n)
    benchmark.extra_info["useful_ops"] = 8 * m * n * k


def test_packed_bit_gemm_and_throughput(benchmark, data):
    *_, a_bits, b_bits, shape = data
    m, n, k = shape
    out = benchmark(complex_bit_gemm, a_bits, b_bits, k, BitOp.AND)
    assert out.shape == (2, m, n)


def test_pack_kernel_throughput(benchmark, rng):
    values = rng.normal(size=(2, 256, 8192)).astype(np.float32)
    packed = benchmark(pack_sign_planar, values)
    assert packed.shape == (2, 256, 256)
    benchmark.extra_info["values_packed"] = values.size


def test_popcount_throughput(benchmark, rng):
    words = rng.integers(0, 2**32, size=2**20, dtype=np.uint32)
    counts = benchmark(popcount, words)
    assert counts.shape == words.shape
    benchmark.extra_info["bits_counted"] = words.size * 32


def test_transpose_throughput(benchmark, rng):
    planar = rng.normal(size=(2, 1024, 512)).astype(np.float32)
    out = benchmark(planar_to_kmajor, planar)
    assert out.shape == (2, 512, 1024)


def test_tiling_throughput(benchmark, rng):
    planar = rng.normal(size=(2, 1024, 1024)).astype(np.float32)
    tiled = benchmark(tile_planar, planar, 16, 16)
    assert tiled.tiles.shape == (2, 64, 64, 16, 16)
