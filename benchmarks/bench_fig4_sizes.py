"""Bench: paper Fig 4 — GEMM performance across matrix sizes."""

from __future__ import annotations

import pytest

from repro.ccglib.benchmark import size_grid, sweep_cubic, sweep_k, sweep_mn
from repro.ccglib.precision import Precision
from repro.gpusim.specs import get_spec


@pytest.mark.parametrize("gpu", ["A100", "MI300X"])
def test_fp16_cubic_sweep(benchmark, gpu):
    spec = get_spec(gpu)
    sizes = size_grid(512, 16384, 1024, include_offsets=(0, 136))

    points = benchmark(sweep_cubic, spec, Precision.FLOAT16, sizes)
    peak = max(p.tops for p in points)
    benchmark.extra_info["sweep_peak_tops"] = round(peak, 1)
    benchmark.extra_info["n_points"] = len(points)
    # the plateau approaches the Table III tuned value
    from repro.ccglib.tuning import published_tuning

    assert peak >= 0.95 * published_tuning(gpu, Precision.FLOAT16).tops


def test_int1_mn_sweep(benchmark):
    spec = get_spec("GH200")
    sizes = size_grid(1024, 16384, 2048, include_offsets=(0, 100))
    points = benchmark(sweep_mn, spec, Precision.INT1, sizes, 524288)
    benchmark.extra_info["sweep_peak_tops"] = round(max(p.tops for p in points), 0)


def test_int1_k_sweep(benchmark):
    spec = get_spec("A100")
    ks = size_grid(32768, 1048576, 131072, include_offsets=(0, 4096))
    points = benchmark(sweep_k, spec, Precision.INT1, ks, 32768, 8192)
    benchmark.extra_info["sweep_peak_tops"] = round(max(p.tops for p in points), 0)


def test_sawtooth_visible(benchmark):
    """Off-tile sizes are measurably slower: the Fig 4 sawtooth."""
    spec = get_spec("A100")

    def measure_pair():
        aligned = sweep_cubic(spec, Precision.FLOAT16, [8192])[0].tops
        off = sweep_cubic(spec, Precision.FLOAT16, [8192 + 136])[0].tops
        return aligned, off

    aligned, off = benchmark(measure_pair)
    benchmark.extra_info["aligned_tops"] = round(aligned, 1)
    benchmark.extra_info["offset_tops"] = round(off, 1)
    assert off < aligned
