"""Bench: paper Table III — tuned kernel performance and energy.

Evaluates the kernel model at the paper's published optimal configurations
(the calibration anchor) and records model-vs-paper for every row.
"""

from __future__ import annotations

import pytest

from repro.ccglib.perfmodel import model_gemm
from repro.ccglib.tuning import TABLE_III
from repro.gpusim.specs import get_spec
from repro.kerneltuner.tuner import PAPER_TUNING_PROBLEMS
from repro.util.units import tera


@pytest.mark.parametrize("row", TABLE_III, ids=lambda r: f"{r.gpu}-{r.precision.value}")
def test_table3_row(benchmark, row):
    spec = get_spec(row.gpu)
    problem = PAPER_TUNING_PROBLEMS[row.precision]

    cost = benchmark(model_gemm, spec, row.precision, problem, row.params)
    model_tops = cost.ops_per_second / tera
    model_tpj = cost.ops_per_joule / tera
    benchmark.extra_info["paper_tops"] = row.tops
    benchmark.extra_info["model_tops"] = round(model_tops, 1)
    benchmark.extra_info["paper_tops_per_joule"] = row.tops_per_joule
    benchmark.extra_info["model_tops_per_joule"] = round(model_tpj, 2)
    assert model_tops == pytest.approx(row.tops, rel=0.01)
    assert model_tpj == pytest.approx(row.tops_per_joule, rel=0.03)


def test_table3_full_experiment(benchmark):
    from repro.bench.table3 import run

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert "table3" in result.tables
