"""Bench: paper Fig 6 — mouse-brain volume: image quality and throughput.

The functional half *really computes*: model matrix, frame simulation,
clutter filter, 1-bit reconstruction at reduced scale — the most expensive
functional path in the repository. The throughput half compares the
dry-run recorded-dataset timing against the Octave baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.ultrasound import (
    ClutterFilter,
    EnsembleConfig,
    ImagingConfig,
    TransducerArray,
    UltrasoundBeamformer,
    VoxelGrid,
    apply_clutter_filter,
    build_model_matrix,
    contrast_db,
    make_phantom,
    max_intensity_projections,
    power_doppler,
    simulate_frames,
)
from repro.bench.fig6 import (
    OCTAVE_OPENCL_EFFICIENCY,
    PAPER_OCTAVE_SECONDS,
    PAPER_TCBF_SECONDS,
    RECORDED_K,
    RECORDED_M,
    RECORDED_N,
)
from repro.ccglib.precision import Precision, complex_ops
from repro.gpusim.device import Device, ExecutionMode
from repro.gpusim.specs import get_spec


@pytest.fixture(scope="module")
def imaging_setup():
    cfg = ImagingConfig(
        array=TransducerArray(4, 4),
        grid=VoxelGrid(shape=(12, 12, 10)),
        n_frequencies=16,
        n_transmissions=8,
    )
    model = build_model_matrix(cfg)
    phantom = make_phantom(cfg.grid, n_generations=3)
    frames = simulate_frames(model, phantom, EnsembleConfig(n_frames=64))
    return cfg, model, phantom, frames


def test_functional_onebit_reconstruction(benchmark, imaging_setup):
    """Wall-clock of the real 1-bit reconstruction (pack + popcount GEMM)."""
    cfg, model, phantom, frames = imaging_setup
    filtered = apply_clutter_filter(frames, ClutterFilter.SVD, 2)
    device = Device("GH200")
    bf = UltrasoundBeamformer(device, model, n_frames=64, precision=Precision.INT1)

    result = benchmark(bf.reconstruct, filtered)
    image = power_doppler(result.frames)
    mips = max_intensity_projections(cfg.grid.to_volume(image))
    mask = phantom.blood_mask_volume()
    contrast = contrast_db(mips["axial"], mask.max(axis=0))
    benchmark.extra_info["vessel_contrast_db"] = round(contrast, 1)
    assert contrast > 4.0


def test_clutter_filter_cost(benchmark, imaging_setup):
    """Wall-clock of the SVD clutter filter (Doppler pre-processing)."""
    *_, frames = imaging_setup
    filtered = benchmark(apply_clutter_filter, frames, ClutterFilter.SVD, 2)
    assert filtered.shape == frames.shape


def test_recorded_dataset_throughput(benchmark):
    """Dry-run timing of the paper's recorded dataset on the GH200."""

    def run():
        device = Device("GH200", ExecutionMode.DRY_RUN)
        bf = UltrasoundBeamformer(
            device, n_voxels=RECORDED_M, k=RECORDED_K, n_frames=RECORDED_N,
            precision=Precision.INT1,
        )
        return bf.reconstruct()

    result = benchmark(run)
    ops = complex_ops(1, RECORDED_M, RECORDED_N, RECORDED_K)
    octave_s = ops / (get_spec("A100").fp32_peak_ops() * OCTAVE_OPENCL_EFFICIENCY)
    benchmark.extra_info["tcbf_seconds_model"] = round(result.time_s, 2)
    benchmark.extra_info["tcbf_seconds_paper"] = PAPER_TCBF_SECONDS
    benchmark.extra_info["octave_seconds_model"] = round(octave_s, 0)
    benchmark.extra_info["octave_seconds_paper"] = PAPER_OCTAVE_SECONDS
    benchmark.extra_info["speedup"] = round(octave_s / result.time_s, 0)
    assert result.time_s < 8.0  # inside the real-time budget
    assert octave_s / result.time_s > 300  # "nearly three orders of magnitude"
